// Package idx implements the IDX multiresolution data format at the heart
// of OpenVisus and the NSDF dashboard: samples of a regular grid are
// reordered along the hierarchical Z-order (HZ) curve, split into
// fixed-size blocks, independently compressed, and stored as objects in
// any Backend. Because coarse resolution levels occupy a prefix of the HZ
// ordering, a reader can progressively refine a region of interest by
// fetching only the blocks that intersect the requested box and level —
// the "storage-oblivious API" of the tutorial paper (§III-A).
//
// Every read and write entry point is context-first: the context bounds
// all backend I/O the call performs, and the fetch and write worker
// pools abort in-flight block plans the moment it is cancelled. This is
// what keeps a slow or hung wide-area object store from pinning the
// serving stack above.
package idx

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nsdfgo/internal/cache"
	"nsdfgo/internal/compress"
	"nsdfgo/internal/hz"
	"nsdfgo/internal/raster"
	"nsdfgo/internal/telemetry/trace"
)

// Dataset is an IDX dataset bound to a Backend.
type Dataset struct {
	// Meta is the dataset descriptor.
	Meta Meta

	be               Backend
	cache            BlockCache
	fillCache        FillerCache
	parallelism      int
	writeParallelism int
	pressure         func() float64
	tel              *dsMetrics
	name             string

	// keyMu guards keyCache, the lazily built per-(field,timestep) table
	// of block object names (see blockKeys).
	keyMu    sync.Mutex
	keyCache map[keyCacheID][]string
}

// BlockCache is an optional block-level cache consulted before the
// Backend on reads ("the caching-enabled framework"). The cache package
// provides the implementations (cache.LRU, cache.Tiered). Blocks are
// ref-counted shared memory: Get hands out the resident payload without
// copying, and Put adopts the decode buffer instead of copying it.
type BlockCache interface {
	// Get returns the cached block, if present. The Block carries one
	// reference owned by the caller, who must Release it after use and
	// treat Bytes as read-only.
	Get(key string) (*cache.Block, bool)
	// Put adopts data as an immutable cached block and returns it with
	// one caller reference (valid even when the cache declines the
	// entry). The caller must not write to data after Put.
	Put(key string, data []byte) *cache.Block
}

// FillerCache is a BlockCache that can also coalesce concurrent fills
// of one key (cache.Tiered). When the attached cache implements it, the
// read paths route misses through GetOrFill, so N concurrent readers of
// the same uncached block share a single backend fetch instead of
// issuing a thundering herd against the object store.
type FillerCache interface {
	BlockCache
	// GetOrFill returns the block for key, running fill at most once
	// across concurrent callers. See cache.Tiered.GetOrFill.
	GetOrFill(ctx context.Context, key string, fill func(ctx context.Context) ([]byte, error)) (*cache.Block, cache.Outcome, error)
}

// cacheRemover is the optional invalidation face of a BlockCache; the
// write paths use it to purge every tier before refreshing an entry.
type cacheRemover interface {
	Remove(key string)
}

// blockPeeker is the optional uncounted-probe face of a BlockCache
// (cache.Tiered.Peek). The read paths probe every block in an assembly
// pre-pass before routing the misses through GetOrFill, which books the
// authoritative miss — so the pre-pass must not count one too, or every
// cold block would register two misses.
type blockPeeker interface {
	Peek(key string) (*cache.Block, bool)
}

// cachePeek probes the attached cache without miss accounting when the
// cache supports it, falling back to a counted Get.
func (d *Dataset) cachePeek(key string) (*cache.Block, bool) {
	if p, ok := d.cache.(blockPeeker); ok {
		return p.Peek(key)
	}
	return d.cache.Get(key)
}

// Create initialises a new dataset in the backend by writing its
// descriptor. ctx bounds the backend I/O. Creating over an existing
// dataset first removes any blocks left under BlockPrefix — otherwise a
// smaller or sparser re-creation could silently serve the previous
// dataset's samples. Backends that cannot delete (no Deleter
// implementation) refuse to create over existing blocks instead.
func Create(ctx context.Context, be Backend, meta Meta) (*Dataset, error) {
	stale, err := be.List(ctx, BlockPrefix)
	if err != nil {
		return nil, fmt.Errorf("idx: scan for stale blocks: %w", err)
	}
	if len(stale) > 0 {
		del, ok := be.(Deleter)
		if !ok {
			return nil, fmt.Errorf("idx: backend holds %d stale blocks under %q and cannot delete them; use a fresh prefix or backend", len(stale), BlockPrefix)
		}
		for _, name := range stale {
			if err := del.Delete(ctx, name); err != nil {
				return nil, fmt.Errorf("idx: delete stale block %q: %w", name, err)
			}
		}
	}
	text, err := meta.MarshalText()
	if err != nil {
		return nil, err
	}
	if err := be.Put(ctx, MetaObjectName, text); err != nil {
		return nil, fmt.Errorf("idx: write descriptor: %w", err)
	}
	return &Dataset{Meta: meta, be: be}, nil
}

// Open loads an existing dataset's descriptor from the backend.
func Open(ctx context.Context, be Backend) (*Dataset, error) {
	text, err := be.Get(ctx, MetaObjectName)
	if err != nil {
		return nil, fmt.Errorf("idx: read descriptor: %w", err)
	}
	var meta Meta
	if err := meta.UnmarshalText(text); err != nil {
		return nil, err
	}
	return &Dataset{Meta: meta, be: be}, nil
}

// SetCache attaches a block cache used by subsequent reads. Caches that
// also implement FillerCache get misses routed through GetOrFill
// (request coalescing).
func (d *Dataset) SetCache(c BlockCache) {
	d.cache = c
	d.fillCache, _ = c.(FillerCache)
}

// SetFetchParallelism bounds how many block fetches a single ReadBox may
// issue concurrently against the backend. 1 (the default) fetches
// serially; higher values hide round-trip latency on remote object
// stores. The backend must be safe for concurrent use (all of this
// repository's backends are).
func (d *Dataset) SetFetchParallelism(n int) {
	if n < 1 {
		n = 1
	}
	d.parallelism = n
}

// SetFetchPressure attaches a load-pressure source (such as
// admission.Controller.Pressure) consulted per read: at pressure 0 the
// configured fetch parallelism applies unchanged, and as pressure
// approaches 1 each read's fan-out contracts toward a single worker.
// This is the backpressure hook that keeps an admission-bounded server
// from multiplying every admitted request into N concurrent backend
// fetches while the tier is already saturated. fn must be safe for
// concurrent use; nil restores unconditional parallelism. Call it at
// setup time, alongside SetFetchParallelism.
func (d *Dataset) SetFetchPressure(fn func() float64) {
	d.pressure = fn
}

func (d *Dataset) fetchParallelism() int {
	n := d.parallelism
	if n < 1 {
		n = 1
	}
	if d.pressure != nil && n > 1 {
		p := d.pressure()
		if p > 1 {
			p = 1
		}
		if p > 0 {
			n -= int(p*float64(n-1) + 0.5)
			if n < 1 {
				n = 1
			}
		}
	}
	return n
}

// SetWriteParallelism bounds how many blocks WriteGrid and WriteVolume
// encode and store concurrently. Values below 1 restore the default,
// which is runtime.GOMAXPROCS(0) — block encoding is CPU-bound, so more
// workers than cores only adds contention. The backend must be safe for
// concurrent use.
func (d *Dataset) SetWriteParallelism(n int) {
	if n < 1 {
		n = 0
	}
	d.writeParallelism = n
}

// writeWorkers resolves the effective write worker count for a job of
// numBlocks blocks.
func (d *Dataset) writeWorkers(numBlocks int) int {
	workers := d.writeParallelism
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > numBlocks {
		workers = numBlocks
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// canceled reports whether err carries a context cancellation or
// deadline expiry, directly or wrapped.
func canceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// readErr books a failed read: cancellations increment the
// nsdf_idx_reads_cancelled_total series so operators can see clients
// abandoning slow reads.
func (d *Dataset) readErr(err error) error {
	if canceled(err) {
		d.recordCancelledRead()
	}
	return err
}

// fetchDecode gets one block from the backend and decodes it — the raw
// fetch under every cache layer. It returns the decoded payload and the
// compressed size. sc, when non-nil, accumulates the fetch and decode
// stage times (and, when the request is traced, records a per-block
// storage.get span).
func (d *Dataset) fetchDecode(ctx context.Context, key string, b int, codec compress.Codec, rawBlockLen int, sc *stageClock) ([]byte, int64, error) {
	var t0 time.Time
	if sc != nil {
		t0 = time.Now()
	}
	enc, err := d.be.Get(ctx, key)
	var t1 time.Time
	if sc != nil {
		t1 = time.Now()
		sc.fetchNS.Add(int64(t1.Sub(t0)))
		if sc.traced {
			trace.Record(ctx, "storage.get", t0, t1,
				trace.Str("dataset", d.name),
				trace.Int("block", int64(b)),
				trace.Int("bytes", int64(len(enc))))
		}
	}
	if err != nil {
		return nil, 0, fmt.Errorf("idx: block %d: %w", b, err)
	}
	raw, err := codec.Decode(enc, rawBlockLen)
	if sc != nil {
		sc.decodeNS.Add(int64(time.Since(t1)))
	}
	if err != nil {
		return nil, 0, fmt.Errorf("idx: decode block %d: %w", b, err)
	}
	return raw, int64(len(enc)), nil
}

// fetchBlockKey returns one block as a ref-counted cache Block (the
// caller must Release it). Misses go through the cache's GetOrFill when
// available, so concurrent fetches of the same key coalesce into one
// backend Get. encLen is the compressed bytes this call actually
// fetched — 0 when the block was served from cache or from another
// caller's in-flight fetch. cached reports a cache-tier hit.
func (d *Dataset) fetchBlockKey(ctx context.Context, key string, b int, codec compress.Codec, rawBlockLen int, sc *stageClock) (blk *cache.Block, encLen int64, cached bool, err error) {
	if d.fillCache != nil {
		var fetched int64
		blk, outcome, err := d.fillCache.GetOrFill(ctx, key, func(ctx context.Context) ([]byte, error) {
			raw, n, err := d.fetchDecode(ctx, key, b, codec, rawBlockLen, sc)
			fetched = n
			return raw, err
		})
		if err != nil {
			return nil, 0, false, err
		}
		hit := outcome == cache.OutcomeHit || outcome == cache.OutcomeDiskHit
		return blk, fetched, hit, nil
	}
	raw, n, err := d.fetchDecode(ctx, key, b, codec, rawBlockLen, sc)
	if err != nil {
		return nil, 0, false, err
	}
	if d.cache != nil {
		return d.cache.Put(key, raw), n, false, nil
	}
	return cache.NewBlock(raw), n, false, nil
}

// Backend returns the dataset's backend.
func (d *Dataset) Backend() Backend { return d.be }

// BlockPrefix is the object-name prefix under which every field's blocks
// are stored; Create clears it when re-creating over an old dataset.
const BlockPrefix = "fields/"

// BlockKey returns the object name of one block.
func (d *Dataset) BlockKey(field string, t, block int) string {
	return fmt.Sprintf(BlockPrefix+"%s/t%04d/b%08d.bin", field, t, block)
}

// checkFieldTime validates a field/timestep pair and returns the field.
func (d *Dataset) checkFieldTime(field string, t int) (Field, error) {
	f, err := d.Meta.Field(field)
	if err != nil {
		return Field{}, err
	}
	if t < 0 || t >= d.Meta.Timesteps {
		return Field{}, fmt.Errorf("idx: timestep %d outside [0,%d)", t, d.Meta.Timesteps)
	}
	return f, nil
}

// WriteGrid stores a full-resolution 2D grid as timestep t of the named
// field, producing every block of the HZ decomposition. The grid must
// match the dataset's logical dimensions. Cancelling ctx aborts the
// write worker pool at its next block claim; already-stored blocks are
// left behind (block writes are not transactional).
func (d *Dataset) WriteGrid(ctx context.Context, field string, t int, g *raster.Grid) error {
	f, err := d.checkFieldTime(field, t)
	if err != nil {
		return err
	}
	if len(d.Meta.Dims) != 2 {
		return fmt.Errorf("idx: WriteGrid requires a 2D dataset; this one has %d dims", len(d.Meta.Dims))
	}
	if g.W != d.Meta.Dims[0] || g.H != d.Meta.Dims[1] {
		return fmt.Errorf("idx: grid %dx%d does not match dataset %dx%d", g.W, g.H, d.Meta.Dims[0], d.Meta.Dims[1])
	}
	codec, err := compress.Lookup(f.Codec)
	if err != nil {
		return err
	}
	mask := d.Meta.Bits
	blockSamples := d.Meta.BlockSamples()
	numBlocks := d.Meta.NumBlocks()
	sz := f.Type.Size()
	w, h := g.W, g.H

	start := time.Now()
	defer func() {
		if d.tel != nil {
			d.tel.writeSeconds.ObserveSince(start)
		}
	}()
	ctx, span := trace.Start(ctx, "idx.write",
		trace.Str("dataset", d.name),
		trace.Str("field", field),
		trace.Int("blocks", int64(numBlocks)))
	defer span.End()
	sc := d.newStageClock(span != nil)

	// Plan: decompose the full-resolution grid into HZ runs grouped by
	// block. Each run gathers a strided span of the row-major grid into a
	// contiguous span of a block, replacing the old per-sample
	// HZToZ+Deinterleave walk over every block slot.
	var planStart time.Time
	if sc != nil {
		planStart = time.Now()
	}
	runs, spans := d.planRuns(hz.RunQuery{NX: w, NY: h, Level: mask.Bits(), OutW: w})
	if sc != nil {
		planEnd := time.Now()
		d.observePlan(planEnd.Sub(planStart))
		if sc.traced {
			trace.Record(ctx, "idx.plan", planStart, planEnd,
				trace.Str("dataset", d.name),
				trace.Int("runs", int64(len(runs))))
		}
	}
	// spanAt[b] indexes spans for block b, or -1 when no grid sample maps
	// into the block (pure padding).
	spanAt := make([]int, numBlocks)
	for i := range spanAt {
		spanAt[i] = -1
	}
	for i, sp := range spans {
		spanAt[sp.block] = i
	}
	keys := d.blockKeys(field, t)
	blockKey := func(b int) string {
		if keys != nil {
			return keys[b]
		}
		return d.BlockKey(field, t, b)
	}

	// Fill template: padding samples (outside the logical dims) store the
	// field's fill value. Blocks with no grid samples at all share one
	// pre-encoded payload.
	fillVals := make([]float32, blockSamples)
	for i := range fillVals {
		fillVals[i] = f.Fill
	}
	rawFill := make([]byte, blockSamples*sz)
	f.Type.encodeBlock(rawFill, fillVals)
	var fillEnc []byte
	if len(spans) < numBlocks {
		fillEnc, err = codec.Encode(rawFill)
		if err != nil {
			return fmt.Errorf("idx: encode fill block: %w", err)
		}
	}

	// Write blocks in parallel: each worker owns whole blocks, so no
	// shared mutable state beyond the (concurrency-safe) backend. The
	// worker count honours SetWriteParallelism, matching the read path's
	// SetFetchParallelism knob. The aborted flag fails the whole write
	// fast once any worker hits an encode or store error — or once ctx
	// is cancelled — instead of letting the others finish every
	// remaining block.
	workers := d.writeWorkers(numBlocks)
	errCh := make(chan error, workers)
	var aborted atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			vals := make([]float32, blockSamples)
			buf := make([]byte, blockSamples*sz)
			for {
				if aborted.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					aborted.Store(true)
					errCh <- err
					return
				}
				b := int(next.Add(1)) - 1
				if b >= numBlocks {
					return
				}
				var encStart time.Time
				if sc != nil {
					encStart = time.Now()
				}
				enc := fillEnc
				if si := spanAt[b]; si >= 0 {
					sp := spans[si]
					covered := 0
					for _, r := range runs[sp.lo:sp.hi] {
						covered += int(r.N)
					}
					if covered < blockSamples {
						copy(vals, fillVals)
					}
					hz0 := uint64(b) << d.Meta.BitsPerBlock
					for _, r := range runs[sp.lo:sp.hi] {
						off := int(r.HZ - hz0)
						n := int(r.N)
						if step := int(r.OutStep); step == 1 {
							copy(vals[off:off+n], g.Data[r.Out:r.Out+n])
						} else {
							src := r.Out
							for i := 0; i < n; i++ {
								vals[off+i] = g.Data[src]
								src += step
							}
						}
					}
					f.Type.encodeBlock(buf, vals)
					var err error
					enc, err = codec.Encode(buf)
					if err != nil {
						aborted.Store(true)
						errCh <- fmt.Errorf("idx: encode block %d: %w", b, err)
						return
					}
				}
				var putStart time.Time
				if sc != nil {
					putStart = time.Now()
					sc.encodeNS.Add(int64(putStart.Sub(encStart)))
				}
				if err := d.be.Put(ctx, blockKey(b), enc); err != nil {
					aborted.Store(true)
					errCh <- fmt.Errorf("idx: store block %d: %w", b, err)
					return
				}
				if sc != nil {
					putEnd := time.Now()
					sc.storeNS.Add(int64(putEnd.Sub(putStart)))
					if sc.traced {
						trace.Record(ctx, "storage.put", putStart, putEnd,
							trace.Str("dataset", d.name),
							trace.Int("block", int64(b)),
							trace.Int("bytes", int64(len(enc))))
					}
				}
				d.recordBlockWrite(len(enc))
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return err
		}
	}
	if sc != nil {
		d.observeWriteStages(sc)
		if sc.traced {
			end := time.Now()
			trace.RecordDuration(ctx, "idx.encode", end, sc.encode(),
				trace.Str("dataset", d.name))
			trace.RecordDuration(ctx, "idx.store", end, sc.store(),
				trace.Str("dataset", d.name))
		}
	}
	return nil
}

// Box is a half-open 2D region [X0,X1) x [Y0,Y1) in full-resolution pixel
// coordinates.
type Box struct {
	// X0, Y0 are the inclusive lower corner.
	X0, Y0 int
	// X1, Y1 are the exclusive upper corner.
	X1, Y1 int
}

// FullBox returns the dataset's entire logical region.
func (d *Dataset) FullBox() Box {
	return Box{0, 0, d.Meta.Dims[0], d.Meta.Dims[1]}
}

// Clip intersects the box with the dataset's logical region.
func (d *Dataset) Clip(b Box) Box {
	if b.X0 < 0 {
		b.X0 = 0
	}
	if b.Y0 < 0 {
		b.Y0 = 0
	}
	if b.X1 > d.Meta.Dims[0] {
		b.X1 = d.Meta.Dims[0]
	}
	if b.Y1 > d.Meta.Dims[1] {
		b.Y1 = d.Meta.Dims[1]
	}
	return b
}

// Empty reports whether the box contains no pixels.
func (b Box) Empty() bool { return b.X1 <= b.X0 || b.Y1 <= b.Y0 }

// ReadStats reports the I/O performed by one ReadBox call.
type ReadStats struct {
	// BlocksRead counts blocks fetched from the backend.
	BlocksRead int
	// BlocksCached counts blocks served by the attached cache.
	BlocksCached int
	// BytesRead counts compressed bytes fetched from the backend.
	BytesRead int64
	// Samples counts samples delivered to the caller.
	Samples int
	// Runs counts the HZ address runs the query planned; Samples/Runs is
	// the mean run length, a direct measure of how much bulk copying the
	// run kernels achieved over per-sample addressing.
	Runs int
}

// ReadBox extracts the level-L lattice samples of the named field within
// box, returning them as a dense grid (one output pixel per lattice
// sample). level ranges from 0 (single coarsest sample) to
// Meta.MaxLevel() (full resolution). Only blocks intersecting the
// requested lattice are fetched, which is what makes remote streaming
// practical: a coarse preview of a 100TB dataset needs a handful of
// blocks.
//
// ctx bounds every block fetch: when it is cancelled the fetch pool
// stops claiming blocks, in-flight fetches are abandoned to the
// backend's own ctx handling, and ReadBox returns the context error.
func (d *Dataset) ReadBox(ctx context.Context, field string, t int, box Box, level int) (*raster.Grid, *ReadStats, error) {
	start := time.Now()
	f, err := d.checkFieldTime(field, t)
	if err != nil {
		return nil, nil, err
	}
	if len(d.Meta.Dims) != 2 {
		return nil, nil, fmt.Errorf("idx: ReadBox requires a 2D dataset")
	}
	if level < 0 || level > d.Meta.MaxLevel() {
		return nil, nil, fmt.Errorf("idx: level %d outside [0,%d]", level, d.Meta.MaxLevel())
	}
	box = d.Clip(box)
	if box.Empty() {
		return nil, nil, fmt.Errorf("idx: empty query box")
	}
	codec, err := compress.Lookup(f.Codec)
	if err != nil {
		return nil, nil, err
	}
	ctx, span := trace.Start(ctx, "idx.read",
		trace.Str("dataset", d.name),
		trace.Str("field", field),
		trace.Int("level", int64(level)))
	defer span.End()
	sc := d.newStageClock(span != nil)
	mask := d.Meta.Bits
	strides := mask.LevelStrides(level)
	sx, sy := strides[0], strides[1]
	// First lattice point >= box lower corner.
	ax0 := (box.X0 + sx - 1) / sx * sx
	ay0 := (box.Y0 + sy - 1) / sy * sy
	if ax0 >= box.X1 || ay0 >= box.Y1 {
		return nil, nil, fmt.Errorf("idx: box %+v contains no level-%d lattice samples", box, level)
	}
	ow := (box.X1-1-ax0)/sx + 1
	oh := (box.Y1-1-ay0)/sy + 1

	out := raster.New(ow, oh)
	stats := &ReadStats{Samples: ow * oh}
	blockSamples := d.Meta.BlockSamples()
	sz := f.Type.Size()
	rawBlockLen := blockSamples * sz

	// Phase 1: plan. Decompose the query into runs of consecutive HZ
	// addresses grouped by block (per-run cost, not per-sample), instead
	// of interleaving every output sample and collecting map-backed block
	// sets.
	var planStart time.Time
	if sc != nil {
		planStart = time.Now()
	}
	runs, spans := d.planRuns(hz.RunQuery{
		X0: ax0, Y0: ay0, NX: ow, NY: oh, Level: level, OutW: ow,
	})
	stats.Runs = len(runs)
	if sc != nil {
		planEnd := time.Now()
		d.observePlan(planEnd.Sub(planStart))
		if sc.traced {
			trace.Record(ctx, "idx.plan", planStart, planEnd,
				trace.Str("dataset", d.name),
				trace.Int("runs", int64(len(runs))),
				trace.Int("blocks", int64(len(spans))))
		}
	}
	keys := d.blockKeys(field, t)
	blockKey := func(b int) string {
		if keys != nil {
			return keys[b]
		}
		return d.BlockKey(field, t, b)
	}
	// assemble scatters one decoded block into the output grid: each run
	// is a contiguous block span copied to a strided grid span with the
	// type switch hoisted out of the loop.
	assemble := func(raw []byte, sp blockSpan) {
		for _, r := range runs[sp.lo:sp.hi] {
			off := int(r.HZ&uint64(blockSamples-1)) * sz
			f.Type.decodeInto(out.Data[r.Out:], int(r.OutStep), raw[off:], int(r.N))
		}
	}
	if sc != nil {
		inner := assemble
		assemble = func(raw []byte, sp blockSpan) {
			t0 := time.Now()
			inner(raw, sp)
			sc.assembleNS.Add(int64(time.Since(t0)))
		}
	}

	// Phase 2: stream. Cached blocks are assembled immediately; misses
	// are fetched from the backend with bounded parallelism and each
	// block is assembled the moment its fetch completes, so assembly
	// overlaps the remaining fetches instead of waiting behind a barrier.
	miss := spans[:0]
	for _, sp := range spans {
		if d.cache != nil {
			if blk, ok := d.cachePeek(blockKey(sp.block)); ok {
				stats.BlocksCached++
				assemble(blk.Bytes(), sp)
				blk.Release()
				continue
			}
		}
		miss = append(miss, sp)
	}
	// Spans are already in ascending block order: deterministic fetch
	// order, sequential on disk.
	workers := d.fetchParallelism()
	if workers > len(miss) {
		workers = len(miss)
	}
	if workers <= 1 {
		for _, sp := range miss {
			if err := ctx.Err(); err != nil {
				return nil, nil, d.readErr(err)
			}
			blk, n, cached, err := d.fetchBlockKey(ctx, blockKey(sp.block), sp.block, codec, rawBlockLen, sc)
			if err != nil {
				return nil, nil, d.readErr(err)
			}
			if cached {
				stats.BlocksCached++
			} else {
				stats.BlocksRead++
				stats.BytesRead += n
			}
			assemble(blk.Bytes(), sp)
			blk.Release()
		}
	} else if err := d.fetchSpans(ctx, miss, workers, blockKey, codec, rawBlockLen, stats, assemble, sc); err != nil {
		return nil, nil, d.readErr(err)
	}

	if d.Meta.Geo != nil {
		out.Geo = &raster.Georef{
			OriginX: d.Meta.Geo.OriginX + float64(ax0)*d.Meta.Geo.PixelW,
			OriginY: d.Meta.Geo.OriginY - float64(ay0)*d.Meta.Geo.PixelH,
			PixelW:  d.Meta.Geo.PixelW * float64(sx),
			PixelH:  d.Meta.Geo.PixelH * float64(sy),
		}
	}
	if sc != nil {
		d.observeReadStages(sc)
		if sc.traced {
			end := time.Now()
			trace.RecordDuration(ctx, "idx.fetch", end, sc.fetch(),
				trace.Str("dataset", d.name),
				trace.Int("blocks", int64(stats.BlocksRead)),
				trace.Int("bytes", stats.BytesRead))
			trace.RecordDuration(ctx, "idx.decode", end, sc.decode(),
				trace.Str("dataset", d.name))
			trace.RecordDuration(ctx, "idx.assemble", end, sc.assemble(),
				trace.Str("dataset", d.name))
			span.SetAttr(
				trace.Int("blocks_read", int64(stats.BlocksRead)),
				trace.Int("blocks_cached", int64(stats.BlocksCached)),
				trace.Int("runs", int64(stats.Runs)))
		}
	}
	d.recordRead(stats)
	if d.tel != nil {
		d.tel.readSeconds.ObserveSince(start)
	}
	return out, stats, nil
}

// fetchSpans runs the parallel block-fetch pool for ReadBox. The feeder
// stops handing out spans and the workers stop claiming them the moment
// ctx is cancelled; the pool always drains fully before fetchSpans
// returns, so a cancelled read leaks no goroutines.
func (d *Dataset) fetchSpans(ctx context.Context, miss []blockSpan, workers int,
	blockKey func(int) string, codec compress.Codec, rawBlockLen int,
	stats *ReadStats, assemble func([]byte, blockSpan), sc *stageClock) error {
	type fetched struct {
		sp     blockSpan
		blk    *cache.Block
		n      int64
		cached bool
		err    error
	}
	work := make(chan blockSpan)
	results := make(chan fetched)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sp := range work {
				blk, n, cached, err := d.fetchBlockKey(ctx, blockKey(sp.block), sp.block, codec, rawBlockLen, sc)
				select {
				case results <- fetched{sp: sp, blk: blk, n: n, cached: cached, err: err}:
				case <-ctx.Done():
					// The collector will never see this block; drop our
					// reference so its buffer can be recycled.
					if blk != nil {
						blk.Release()
					}
					return
				}
			}
		}()
	}
	go func() {
		defer close(work)
		for _, sp := range miss {
			select {
			case work <- sp:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()
	var firstErr error
	for r := range results {
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		if r.cached {
			stats.BlocksCached++
		} else {
			stats.BlocksRead++
			stats.BytesRead += r.n
		}
		assemble(r.blk.Bytes(), r.sp)
		r.blk.Release()
	}
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	return firstErr
}

// ReadFull reads the complete dataset extent at full resolution.
func (d *Dataset) ReadFull(ctx context.Context, field string, t int) (*raster.Grid, *ReadStats, error) {
	return d.ReadBox(ctx, field, t, d.FullBox(), d.Meta.MaxLevel())
}

// StoredBytes sums the sizes of all stored blocks of one field/timestep,
// plus nothing else; the experiment harness compares this to TIFF sizes.
func (d *Dataset) StoredBytes(ctx context.Context, field string, t int) (int64, error) {
	if _, err := d.checkFieldTime(field, t); err != nil {
		return 0, err
	}
	prefix := fmt.Sprintf("fields/%s/t%04d/", field, t)
	names, err := d.be.List(ctx, prefix)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, name := range names {
		data, err := d.be.Get(ctx, name)
		if err != nil {
			return 0, err
		}
		total += int64(len(data))
	}
	return total, nil
}
