package idx

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// failFirstPutBackend fails the first block Put and slows the rest, so a
// write without early abort would grind through every remaining block.
type failFirstPutBackend struct {
	*MemBackend
	mu       sync.Mutex
	blockPut int
}

func (b *failFirstPutBackend) Put(ctx context.Context, name string, data []byte) error {
	if !strings.HasPrefix(name, BlockPrefix) {
		return b.MemBackend.Put(ctx, name, data) // descriptor writes pass through
	}
	b.mu.Lock()
	b.blockPut++
	n := b.blockPut
	b.mu.Unlock()
	if n == 1 {
		return errors.New("injected store failure")
	}
	// Successful block stores are slow enough that workers not observing
	// the abort flag would take measurable wall time per block.
	time.Sleep(time.Millisecond)
	return b.MemBackend.Put(ctx, name, data)
}

func (b *failFirstPutBackend) puts() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.blockPut
}

// TestWriteGridAbortsOnError checks that one worker's store failure
// stops the whole write quickly instead of letting the other workers
// finish every remaining block.
func TestWriteGridAbortsOnError(t *testing.T) {
	be := &failFirstPutBackend{MemBackend: NewMemBackend()}
	meta, err := NewMeta([]int{128, 128}, []Field{{Name: "v", Type: Float32, Codec: "raw"}})
	if err != nil {
		t.Fatal(err)
	}
	meta.BitsPerBlock = 8 // 64 blocks
	ds, err := Create(context.Background(), be, meta)
	if err != nil {
		t.Fatal(err)
	}
	ds.SetWriteParallelism(2)
	numBlocks := meta.NumBlocks()

	err = ds.WriteGrid(context.Background(), "v", 0, rampGrid(128, 128))
	if err == nil {
		t.Fatal("WriteGrid succeeded despite failing backend")
	}
	if got := be.puts(); got > numBlocks/4 {
		t.Fatalf("write attempted %d of %d block stores after the failure; early abort is not engaging", got, numBlocks)
	}
}
