package idx

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"nsdfgo/internal/telemetry"
)

// hangingBackend serves the descriptor normally but parks every block
// Get until the caller's context is cancelled — the shape of a stalled
// remote store. Honouring ctx is exactly what Backend implementations
// promise, so a leak in this test is the Dataset's, not the backend's.
type hangingBackend struct {
	*MemBackend
	entered chan struct{}
}

func (b *hangingBackend) Get(ctx context.Context, name string) ([]byte, error) {
	if !strings.HasPrefix(name, BlockPrefix) {
		return b.MemBackend.Get(ctx, name)
	}
	select {
	case b.entered <- struct{}{}:
	default:
	}
	<-ctx.Done()
	return nil, ctx.Err()
}

// waitForGoroutines polls until the live goroutine count drops back to
// at most want, failing the test after a generous deadline.
func waitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines did not drain: have %d, want <= %d", runtime.NumGoroutine(), want)
}

// TestReadBoxCancelFreesFetchWorkers is the tentpole regression test: a
// read against a hung store must return promptly when its context is
// cancelled, every fetch worker must exit (no goroutine leak), and the
// cancellation must be visible in telemetry.
func TestReadBoxCancelFreesFetchWorkers(t *testing.T) {
	meta, err := NewMeta([]int{128, 128}, []Field{{Name: "elevation", Type: Float32}})
	if err != nil {
		t.Fatal(err)
	}
	meta.BitsPerBlock = 8 // 64 blocks: plenty of work to strand in-flight
	mem := NewMemBackend()
	ds, err := Create(context.Background(), mem, meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteGrid(context.Background(), "elevation", 0, rampGrid(128, 128)); err != nil {
		t.Fatal(err)
	}

	// Reopen through the hanging wrapper so only reads stall.
	be := &hangingBackend{MemBackend: mem, entered: make(chan struct{}, 1)}
	ds2, err := Open(context.Background(), be)
	if err != nil {
		t.Fatal(err)
	}
	ds2.SetFetchParallelism(4)
	reg := telemetry.NewRegistry()
	ds2.SetTelemetry(reg, "hung")

	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := ds2.ReadBox(ctx, "elevation", 0, ds2.FullBox(), ds2.Meta.MaxLevel())
		done <- err
	}()

	// Wait until at least one worker is parked inside the store, then
	// pull the plug.
	select {
	case <-be.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("no block fetch ever started")
	}
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("ReadBox returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ReadBox did not return after cancellation")
	}

	// The feeder, the workers, and the closer must all have exited.
	waitForGoroutines(t, base)

	if got := reg.SumFamily("nsdf_idx_reads_cancelled_total"); got < 1 {
		t.Errorf("nsdf_idx_reads_cancelled_total = %v, want >= 1", got)
	}
}

// TestWriteGridCancelStopsClaims checks the write pool's mirror-image
// behaviour: cancelling mid-write aborts the remaining block claims and
// surfaces the context error.
func TestWriteGridCancelStopsClaims(t *testing.T) {
	meta, err := NewMeta([]int{128, 128}, []Field{{Name: "elevation", Type: Float32}})
	if err != nil {
		t.Fatal(err)
	}
	meta.BitsPerBlock = 8
	ds, err := Create(context.Background(), NewMemBackend(), meta)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ds.WriteGrid(ctx, "elevation", 0, rampGrid(128, 128)); !errors.Is(err, context.Canceled) {
		t.Fatalf("WriteGrid on a cancelled ctx returned %v, want context.Canceled", err)
	}
}
