package idx

import (
	"nsdfgo/internal/telemetry"
)

// dsMetrics holds the dataset's resolved telemetry series. All fields
// are safe for concurrent use; hot paths nil-check the struct once.
type dsMetrics struct {
	blocksRead     *telemetry.Counter
	blocksCached   *telemetry.Counter
	blocksWritten  *telemetry.Counter
	bytesRead      *telemetry.Counter
	bytesWritten   *telemetry.Counter
	readRuns       *telemetry.Counter
	readsCancelled *telemetry.Counter
	readSeconds    *telemetry.Histogram
	writeSeconds   *telemetry.Histogram
}

// SetTelemetry attaches a metrics registry to the dataset, labelling its
// series with the given dataset name. Subsequent reads and writes record:
//
//	nsdf_idx_blocks_read_total{dataset}     blocks fetched from the backend
//	nsdf_idx_blocks_cached_total{dataset}   blocks served by the cache
//	nsdf_idx_blocks_written_total{dataset}  blocks stored
//	nsdf_idx_bytes_read_total{dataset}      compressed bytes fetched
//	nsdf_idx_bytes_written_total{dataset}   compressed bytes stored
//	nsdf_idx_read_runs_total{dataset}       planned HZ address runs (see ReadStats.Runs)
//	nsdf_idx_reads_cancelled_total{dataset} reads aborted by context cancellation/deadline
//	nsdf_idx_read_seconds{dataset}          ReadBox/ReadBox3D latency
//	nsdf_idx_write_seconds{dataset}         WriteGrid/WriteVolume latency
func (d *Dataset) SetTelemetry(reg *telemetry.Registry, dataset string) {
	if reg == nil {
		d.tel = nil
		return
	}
	d.tel = &dsMetrics{
		blocksRead:     reg.Counter("nsdf_idx_blocks_read_total", "dataset", dataset),
		blocksCached:   reg.Counter("nsdf_idx_blocks_cached_total", "dataset", dataset),
		blocksWritten:  reg.Counter("nsdf_idx_blocks_written_total", "dataset", dataset),
		bytesRead:      reg.Counter("nsdf_idx_bytes_read_total", "dataset", dataset),
		bytesWritten:   reg.Counter("nsdf_idx_bytes_written_total", "dataset", dataset),
		readRuns:       reg.Counter("nsdf_idx_read_runs_total", "dataset", dataset),
		readsCancelled: reg.Counter("nsdf_idx_reads_cancelled_total", "dataset", dataset),
		readSeconds:    reg.Histogram("nsdf_idx_read_seconds", "dataset", dataset),
		writeSeconds:   reg.Histogram("nsdf_idx_write_seconds", "dataset", dataset),
	}
}

// recordRead books one finished box read into the dataset's telemetry.
func (d *Dataset) recordRead(stats *ReadStats) {
	t := d.tel
	if t == nil {
		return
	}
	t.blocksRead.Add(int64(stats.BlocksRead))
	t.blocksCached.Add(int64(stats.BlocksCached))
	t.bytesRead.Add(stats.BytesRead)
	t.readRuns.Add(int64(stats.Runs))
}

// recordCancelledRead books one read aborted by context cancellation or
// deadline expiry; dashboards watch this to see clients abandoning slow
// wide-area reads.
func (d *Dataset) recordCancelledRead() {
	t := d.tel
	if t == nil {
		return
	}
	t.readsCancelled.Inc()
}

// recordBlockWrite books one stored block.
func (d *Dataset) recordBlockWrite(compressedBytes int) {
	t := d.tel
	if t == nil {
		return
	}
	t.blocksWritten.Inc()
	t.bytesWritten.Add(int64(compressedBytes))
}
