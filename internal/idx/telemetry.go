package idx

import (
	"time"

	"nsdfgo/internal/telemetry"
)

// dsMetrics holds the dataset's resolved telemetry series. All fields
// are safe for concurrent use; hot paths nil-check the struct once.
type dsMetrics struct {
	blocksRead     *telemetry.Counter
	blocksCached   *telemetry.Counter
	blocksWritten  *telemetry.Counter
	bytesRead      *telemetry.Counter
	bytesWritten   *telemetry.Counter
	readRuns       *telemetry.Counter
	readsCancelled *telemetry.Counter
	readSeconds    *telemetry.Histogram
	writeSeconds   *telemetry.Histogram

	stagePlan     *telemetry.Histogram
	stageFetch    *telemetry.Histogram
	stageDecode   *telemetry.Histogram
	stageAssemble *telemetry.Histogram
	stageEncode   *telemetry.Histogram
	stageStore    *telemetry.Histogram
}

// SetTelemetry attaches a metrics registry to the dataset, labelling its
// series with the given dataset name. Subsequent reads and writes record:
//
//	nsdf_idx_blocks_read_total{dataset}     blocks fetched from the backend
//	nsdf_idx_blocks_cached_total{dataset}   blocks served by the cache
//	nsdf_idx_blocks_written_total{dataset}  blocks stored
//	nsdf_idx_bytes_read_total{dataset}      compressed bytes fetched
//	nsdf_idx_bytes_written_total{dataset}   compressed bytes stored
//	nsdf_idx_read_runs_total{dataset}       planned HZ address runs (see ReadStats.Runs)
//	nsdf_idx_reads_cancelled_total{dataset} reads aborted by context cancellation/deadline
//	nsdf_idx_read_seconds{dataset}          ReadBox/ReadBox3D latency
//	nsdf_idx_write_seconds{dataset}         WriteGrid/WriteVolume latency
//	nsdf_idx_stage_seconds{stage,dataset}   per-stage pipeline time; stage is
//	                                        plan/fetch/decode/assemble on reads
//	                                        and plan/encode/store on writes.
//	                                        Fetch/decode/assemble/encode/store
//	                                        are busy time summed across the
//	                                        worker pool, so they can exceed the
//	                                        call's wall time.
//
// The dataset name also labels the spans the dataset records into an
// active request trace (see internal/telemetry/trace).
func (d *Dataset) SetTelemetry(reg *telemetry.Registry, dataset string) {
	d.name = dataset
	if reg == nil {
		d.tel = nil
		return
	}
	d.tel = &dsMetrics{
		blocksRead:     reg.Counter("nsdf_idx_blocks_read_total", "dataset", dataset),
		blocksCached:   reg.Counter("nsdf_idx_blocks_cached_total", "dataset", dataset),
		blocksWritten:  reg.Counter("nsdf_idx_blocks_written_total", "dataset", dataset),
		bytesRead:      reg.Counter("nsdf_idx_bytes_read_total", "dataset", dataset),
		bytesWritten:   reg.Counter("nsdf_idx_bytes_written_total", "dataset", dataset),
		readRuns:       reg.Counter("nsdf_idx_read_runs_total", "dataset", dataset),
		readsCancelled: reg.Counter("nsdf_idx_reads_cancelled_total", "dataset", dataset),
		readSeconds:    reg.Histogram("nsdf_idx_read_seconds", "dataset", dataset),
		writeSeconds:   reg.Histogram("nsdf_idx_write_seconds", "dataset", dataset),

		stagePlan:     reg.Histogram("nsdf_idx_stage_seconds", "stage", "plan", "dataset", dataset),
		stageFetch:    reg.Histogram("nsdf_idx_stage_seconds", "stage", "fetch", "dataset", dataset),
		stageDecode:   reg.Histogram("nsdf_idx_stage_seconds", "stage", "decode", "dataset", dataset),
		stageAssemble: reg.Histogram("nsdf_idx_stage_seconds", "stage", "assemble", "dataset", dataset),
		stageEncode:   reg.Histogram("nsdf_idx_stage_seconds", "stage", "encode", "dataset", dataset),
		stageStore:    reg.Histogram("nsdf_idx_stage_seconds", "stage", "store", "dataset", dataset),
	}
}

// observePlan books one planning pass into the stage histogram.
func (d *Dataset) observePlan(dur time.Duration) {
	if t := d.tel; t != nil {
		t.stagePlan.Observe(dur.Seconds())
	}
}

// observeReadStages books a read's accumulated stage times.
func (d *Dataset) observeReadStages(sc *stageClock) {
	t := d.tel
	if t == nil {
		return
	}
	t.stageFetch.Observe(sc.fetch().Seconds())
	t.stageDecode.Observe(sc.decode().Seconds())
	t.stageAssemble.Observe(sc.assemble().Seconds())
}

// observeWriteStages books a write's accumulated stage times.
func (d *Dataset) observeWriteStages(sc *stageClock) {
	t := d.tel
	if t == nil {
		return
	}
	t.stageEncode.Observe(sc.encode().Seconds())
	t.stageStore.Observe(sc.store().Seconds())
}

// recordRead books one finished box read into the dataset's telemetry.
func (d *Dataset) recordRead(stats *ReadStats) {
	t := d.tel
	if t == nil {
		return
	}
	t.blocksRead.Add(int64(stats.BlocksRead))
	t.blocksCached.Add(int64(stats.BlocksCached))
	t.bytesRead.Add(stats.BytesRead)
	t.readRuns.Add(int64(stats.Runs))
}

// recordCancelledRead books one read aborted by context cancellation or
// deadline expiry; dashboards watch this to see clients abandoning slow
// wide-area reads.
func (d *Dataset) recordCancelledRead() {
	t := d.tel
	if t == nil {
		return
	}
	t.readsCancelled.Inc()
}

// recordBlockWrite books one stored block.
func (d *Dataset) recordBlockWrite(compressedBytes int) {
	t := d.tel
	if t == nil {
		return
	}
	t.blocksWritten.Inc()
	t.bytesWritten.Add(int64(compressedBytes))
}
