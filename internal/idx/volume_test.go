package idx

import (
	"context"
	"math"
	"testing"
	"testing/quick"
)

// volField fills a volume with a function of (x,y,z) so any sample can be
// verified independently.
func volField(w, h, d int) []float32 {
	data := make([]float32, w*h*d)
	for z := 0; z < d; z++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				data[(z*h+y)*w+x] = float32(x + 100*y + 10000*z)
			}
		}
	}
	return data
}

func newVolumeDataset(t *testing.T, w, h, d, bitsPerBlock int) *Dataset {
	t.Helper()
	meta, err := NewMeta([]int{w, h, d}, []Field{{Name: "density", Type: Float32}})
	if err != nil {
		t.Fatal(err)
	}
	if bitsPerBlock > 0 && bitsPerBlock <= meta.Bits.Bits() {
		meta.BitsPerBlock = bitsPerBlock
	}
	ds, err := Create(context.Background(), NewMemBackend(), meta)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestVolumeWriteReadFull(t *testing.T) {
	const w, h, d = 32, 16, 8
	ds := newVolumeDataset(t, w, h, d, 8)
	data := volField(w, h, d)
	if err := ds.WriteVolume(context.Background(), "density", 0, data); err != nil {
		t.Fatal(err)
	}
	vol, stats, err := ds.ReadBox3D(context.Background(), "density", 0, ds.FullBox3(), ds.Meta.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}
	if vol.Dims != [3]int{w, h, d} {
		t.Fatalf("dims %v", vol.Dims)
	}
	for i := range data {
		if vol.Data[i] != data[i] {
			t.Fatalf("sample %d: %v != %v", i, vol.Data[i], data[i])
		}
	}
	if stats.Samples != w*h*d {
		t.Errorf("stats.Samples = %d", stats.Samples)
	}
}

func TestVolumeSubBox(t *testing.T) {
	const w, h, d = 32, 16, 8
	ds := newVolumeDataset(t, w, h, d, 8)
	if err := ds.WriteVolume(context.Background(), "density", 0, volField(w, h, d)); err != nil {
		t.Fatal(err)
	}
	box := Box3{X0: 4, Y0: 2, Z0: 1, X1: 12, Y1: 10, Z1: 5}
	vol, _, err := ds.ReadBox3D(context.Background(), "density", 0, box, ds.Meta.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}
	if vol.Dims != [3]int{8, 8, 4} {
		t.Fatalf("dims %v", vol.Dims)
	}
	for z := 0; z < 4; z++ {
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				want := float32((4 + x) + 100*(2+y) + 10000*(1+z))
				if got := vol.At(x, y, z); got != want {
					t.Fatalf("(%d,%d,%d) = %v, want %v", x, y, z, got, want)
				}
			}
		}
	}
}

func TestVolumeCoarseLevels(t *testing.T) {
	const w, h, d = 16, 16, 16
	ds := newVolumeDataset(t, w, h, d, 6)
	data := volField(w, h, d)
	if err := ds.WriteVolume(context.Background(), "density", 0, data); err != nil {
		t.Fatal(err)
	}
	for level := 0; level <= ds.Meta.MaxLevel(); level += 3 {
		vol, _, err := ds.ReadBox3D(context.Background(), "density", 0, ds.FullBox3(), level)
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		// Every returned sample must equal the lattice point's true value.
		for z := 0; z < vol.Dims[2]; z++ {
			for y := 0; y < vol.Dims[1]; y++ {
				for x := 0; x < vol.Dims[0]; x++ {
					sx := vol.Offset[0] + x*vol.Stride[0]
					sy := vol.Offset[1] + y*vol.Stride[1]
					sz := vol.Offset[2] + z*vol.Stride[2]
					want := data[(sz*h+sy)*w+sx]
					if got := vol.At(x, y, z); got != want {
						t.Fatalf("level %d (%d,%d,%d): %v != %v", level, x, y, z, got, want)
					}
				}
			}
		}
	}
}

func TestVolumeCoarseLevelsReadLess(t *testing.T) {
	const w, h, d = 64, 64, 32
	ds := newVolumeDataset(t, w, h, d, 10)
	if err := ds.WriteVolume(context.Background(), "density", 0, volField(w, h, d)); err != nil {
		t.Fatal(err)
	}
	_, coarse, err := ds.ReadBox3D(context.Background(), "density", 0, ds.FullBox3(), 6)
	if err != nil {
		t.Fatal(err)
	}
	_, fine, err := ds.ReadBox3D(context.Background(), "density", 0, ds.FullBox3(), ds.Meta.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}
	if coarse.BytesRead*8 > fine.BytesRead {
		t.Errorf("coarse %d bytes vs fine %d; expected >=8x reduction", coarse.BytesRead, fine.BytesRead)
	}
}

func TestVolumeSliceZ(t *testing.T) {
	const w, h, d = 24, 12, 6
	ds := newVolumeDataset(t, w, h, d, 8)
	data := volField(w, h, d)
	if err := ds.WriteVolume(context.Background(), "density", 0, data); err != nil {
		t.Fatal(err)
	}
	slice, _, err := ds.ReadSliceZ(context.Background(), "density", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if slice.Dims != [3]int{w, h, 1} {
		t.Fatalf("slice dims %v", slice.Dims)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			want := data[(3*h+y)*w+x]
			if got := slice.At(x, y, 0); got != want {
				t.Fatalf("(%d,%d): %v != %v", x, y, got, want)
			}
		}
	}
	if _, _, err := ds.ReadSliceZ(context.Background(), "density", 0, 99); err == nil {
		t.Error("out-of-range slice accepted")
	}
}

func TestVolumeValidation(t *testing.T) {
	ds := newVolumeDataset(t, 8, 8, 8, 6)
	if err := ds.WriteVolume(context.Background(), "density", 0, make([]float32, 10)); err == nil {
		t.Error("short volume accepted")
	}
	if err := ds.WriteVolume(context.Background(), "nope", 0, make([]float32, 512)); err == nil {
		t.Error("unknown field accepted")
	}
	if err := ds.WriteVolume(context.Background(), "density", 0, volField(8, 8, 8)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ds.ReadBox3D(context.Background(), "density", 0, Box3{X0: 9, X1: 10, Y1: 1, Z1: 1}, 9); err == nil {
		t.Error("out-of-range box accepted")
	}
	if _, _, err := ds.ReadBox3D(context.Background(), "density", 0, ds.FullBox3(), 99); err == nil {
		t.Error("bad level accepted")
	}
	// 2D API on a 3D dataset must refuse cleanly.
	if _, _, err := ds.ReadBox(context.Background(), "density", 0, Box{X1: 4, Y1: 4}, 6); err == nil {
		t.Error("2D read on 3D dataset accepted")
	}
}

func TestVolume2DWriteOn3DRefused(t *testing.T) {
	ds := newVolumeDataset(t, 8, 8, 8, 6)
	g := rampGrid(8, 8)
	if err := ds.WriteGrid(context.Background(), "density", 0, g); err == nil {
		t.Error("2D write on 3D dataset accepted")
	}
	// And 3D write on a 2D dataset.
	ds2d, _ := newTestDataset(t, 8, 8, float32Fields())
	if err := ds2d.WriteVolume(context.Background(), "elevation", 0, make([]float32, 64)); err == nil {
		t.Error("3D write on 2D dataset accepted")
	}
}

func TestVolumeNaNSurvives(t *testing.T) {
	ds := newVolumeDataset(t, 8, 8, 8, 6)
	data := volField(8, 8, 8)
	data[100] = float32(math.NaN())
	if err := ds.WriteVolume(context.Background(), "density", 0, data); err != nil {
		t.Fatal(err)
	}
	vol, _, err := ds.ReadBox3D(context.Background(), "density", 0, ds.FullBox3(), ds.Meta.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(vol.Data[100])) {
		t.Error("NaN lost in volume round trip")
	}
}

func TestVolumeRoundTripProperty(t *testing.T) {
	f := func(seed int64, wRaw, hRaw, dRaw uint8) bool {
		w := int(wRaw%12) + 2
		h := int(hRaw%12) + 2
		d := int(dRaw%6) + 2
		meta, err := NewMeta([]int{w, h, d}, []Field{{Name: "v", Type: Float32}})
		if err != nil {
			return false
		}
		if meta.BitsPerBlock > 6 && meta.Bits.Bits() >= 6 {
			meta.BitsPerBlock = 6
		}
		ds, err := Create(context.Background(), NewMemBackend(), meta)
		if err != nil {
			return false
		}
		data := make([]float32, w*h*d)
		s := uint64(seed)
		for i := range data {
			s = s*6364136223846793005 + 1442695040888963407
			data[i] = float32(int32(s >> 33))
		}
		if err := ds.WriteVolume(context.Background(), "v", 0, data); err != nil {
			return false
		}
		vol, _, err := ds.ReadBox3D(context.Background(), "v", 0, ds.FullBox3(), ds.Meta.MaxLevel())
		if err != nil {
			return false
		}
		for i := range data {
			if vol.Data[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkVolumeWrite64(b *testing.B) {
	meta, _ := NewMeta([]int{64, 64, 64}, []Field{{Name: "v", Type: Float32}})
	meta.BitsPerBlock = 12
	data := volField(64, 64, 64)
	b.SetBytes(int64(4 * len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ds, _ := Create(context.Background(), NewMemBackend(), meta)
		if err := ds.WriteVolume(context.Background(), "v", 0, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVolumeSliceZ(b *testing.B) {
	meta, _ := NewMeta([]int{64, 64, 64}, []Field{{Name: "v", Type: Float32}})
	meta.BitsPerBlock = 12
	ds, _ := Create(context.Background(), NewMemBackend(), meta)
	if err := ds.WriteVolume(context.Background(), "v", 0, volField(64, 64, 64)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ds.ReadSliceZ(context.Background(), "v", 0, i%64); err != nil {
			b.Fatal(err)
		}
	}
}
