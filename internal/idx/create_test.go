package idx

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"nsdfgo/internal/raster"
)

// noDeleteBackend hides MemBackend's Delete so the wrapped value
// satisfies Backend but not Deleter.
type noDeleteBackend struct {
	m *MemBackend
}

func (b *noDeleteBackend) Get(ctx context.Context, name string) ([]byte, error) {
	return b.m.Get(ctx, name)
}

func (b *noDeleteBackend) Put(ctx context.Context, name string, data []byte) error {
	return b.m.Put(ctx, name, data)
}

func (b *noDeleteBackend) List(ctx context.Context, prefix string) ([]string, error) {
	return b.m.List(ctx, prefix)
}

// TestCreateRemovesStaleBlocks is the regression test for re-creating a
// dataset over a backend that still holds the previous dataset's blocks:
// before the fix, Create only rewrote the descriptor, so a re-created
// (smaller or sparser) dataset could silently serve the old samples.
func TestCreateRemovesStaleBlocks(t *testing.T) {
	meta, err := NewMeta([]int{32, 32}, float32Fields())
	if err != nil {
		t.Fatal(err)
	}
	be := NewMemBackend()
	ds, err := Create(context.Background(), be, meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteGrid(context.Background(), "elevation", 0, rampGrid(32, 32)); err != nil {
		t.Fatal(err)
	}
	blocks, err := be.List(context.Background(), BlockPrefix)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) == 0 {
		t.Fatal("write left no blocks; test setup broken")
	}

	ds2, err := Create(context.Background(), be, meta)
	if err != nil {
		t.Fatalf("re-Create over existing blocks: %v", err)
	}
	left, err := be.List(context.Background(), BlockPrefix)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("%d stale blocks survived re-Create: %v", len(left), left)
	}
	// The re-created dataset is empty: a read must fail rather than
	// return the previous dataset's samples.
	if _, _, err := ds2.ReadFull(context.Background(), "elevation", 0); err == nil {
		t.Error("ReadFull on freshly re-created dataset succeeded — served stale blocks")
	}
}

// TestCreateRefusesStaleBlocksWithoutDeleter checks the fallback for
// backends that cannot delete: refusing is safer than serving stale data.
func TestCreateRefusesStaleBlocksWithoutDeleter(t *testing.T) {
	meta, err := NewMeta([]int{32, 32}, float32Fields())
	if err != nil {
		t.Fatal(err)
	}
	inner := NewMemBackend()
	be := &noDeleteBackend{m: inner}
	ds, err := Create(context.Background(), be, meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteGrid(context.Background(), "elevation", 0, rampGrid(32, 32)); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(context.Background(), be, meta); err == nil {
		t.Fatal("Create over stale blocks succeeded on a backend without Delete")
	} else if !strings.Contains(err.Error(), "stale blocks") {
		t.Errorf("error %q does not mention stale blocks", err)
	}
	// A clean backend still works.
	if _, err := Create(context.Background(), &noDeleteBackend{m: NewMemBackend()}, meta); err != nil {
		t.Errorf("Create on clean non-deleting backend: %v", err)
	}
}

// TestDeleteMissingObjectIsNoError pins the Deleter contract both
// in-memory and on-disk backends share.
func TestDeleteMissingObjectIsNoError(t *testing.T) {
	if err := NewMemBackend().Delete(context.Background(), "absent"); err != nil {
		t.Errorf("MemBackend.Delete(context.Background(), absent) = %v", err)
	}
	dir, err := NewDirBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := dir.Delete(context.Background(), "absent"); err != nil {
		t.Errorf("DirBackend.Delete(context.Background(), absent) = %v", err)
	}
}

// putCountingBackend tracks the peak number of concurrent Put calls.
type putCountingBackend struct {
	*MemBackend
	mu      sync.Mutex
	current int
	peak    int
}

func (b *putCountingBackend) Put(ctx context.Context, name string, data []byte) error {
	b.mu.Lock()
	b.current++
	if b.current > b.peak {
		b.peak = b.current
	}
	b.mu.Unlock()
	// Hold the slot briefly so concurrent writers actually overlap.
	time.Sleep(2 * time.Millisecond)
	defer func() {
		b.mu.Lock()
		b.current--
		b.mu.Unlock()
	}()
	return b.MemBackend.Put(ctx, name, data)
}

func (b *putCountingBackend) Peak() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peak
}

// TestWriteParallelismHonored is the regression test for the hardcoded
// 4-worker write pool: SetWriteParallelism must actually bound the
// number of concurrent block Puts, and the stored objects must be
// byte-identical regardless of worker count.
func TestWriteParallelismHonored(t *testing.T) {
	meta, err := NewMeta([]int{64, 64}, float32Fields())
	if err != nil {
		t.Fatal(err)
	}
	meta.BitsPerBlock = 8 // 16 blocks: room for parallelism
	g := rampGrid(64, 64)

	write := func(workers int) (*putCountingBackend, *Dataset) {
		t.Helper()
		be := &putCountingBackend{MemBackend: NewMemBackend()}
		ds, err := Create(context.Background(), be, meta)
		if err != nil {
			t.Fatal(err)
		}
		ds.SetWriteParallelism(workers)
		if err := ds.WriteGrid(context.Background(), "elevation", 0, g); err != nil {
			t.Fatal(err)
		}
		return be, ds
	}

	serialBE, serialDS := write(1)
	if got := serialBE.Peak(); got != 1 {
		t.Errorf("SetWriteParallelism(1): peak concurrent Puts = %d, want 1", got)
	}
	parallelBE, parallelDS := write(8)
	if got := parallelBE.Peak(); got < 2 {
		t.Errorf("SetWriteParallelism(8): peak concurrent Puts = %d, want >= 2", got)
	}

	// Same bytes in every object either way.
	names, err := serialBE.List(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		a, err := serialBE.Get(context.Background(), name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := parallelBE.Get(context.Background(), name)
		if err != nil {
			t.Fatalf("object %q missing from parallel write: %v", name, err)
		}
		if string(a) != string(b) {
			t.Errorf("object %q differs between serial and parallel writes", name)
		}
	}

	// And the data round-trips identically.
	for _, ds := range []*Dataset{serialDS, parallelDS} {
		out, _, err := ds.ReadFull(context.Background(), "elevation", 0)
		if err != nil {
			t.Fatal(err)
		}
		if !raster.Equal(g, out) {
			t.Error("round trip mismatch after parallel write")
		}
	}

	// Values below 1 restore the GOMAXPROCS default rather than sticking.
	ds := serialDS
	ds.SetWriteParallelism(-3)
	if got := ds.writeWorkers(1); got != 1 {
		t.Errorf("writeWorkers(1) = %d, want clamp to job size 1", got)
	}
}
