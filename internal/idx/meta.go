package idx

import (
	"fmt"
	"strconv"
	"strings"

	"nsdfgo/internal/compress"
	"nsdfgo/internal/hz"
	"nsdfgo/internal/raster"
)

// Field describes one variable stored in an IDX dataset (the dashboard's
// dataset dropdown lists these).
type Field struct {
	// Name identifies the field; it appears in object keys and must match
	// [A-Za-z0-9_-]+.
	Name string
	// Type is the sample type.
	Type DType
	// Codec names the lossless compression applied to each block ("raw",
	// "zlib", "lz4").
	Codec string
	// Fill is the value stored for padded samples outside the logical box.
	// Padding compresses to almost nothing regardless (it is constant),
	// but a fill near the field's typical magnitude renders better at
	// coarse levels near the border.
	Fill float32
}

// Meta is the parsed content of a dataset's .idx descriptor.
type Meta struct {
	// Version is the descriptor version (currently 1).
	Version int
	// Dims is the logical box extent per axis (width, height, ...).
	Dims []int
	// Bits is the HZ interleaving pattern covering the pow2-padded box.
	Bits hz.Bitmask
	// BitsPerBlock sets the block size: each block holds 2^BitsPerBlock
	// samples in HZ order.
	BitsPerBlock int
	// Timesteps is the number of time slices (>= 1); the dashboard's time
	// slider ranges over these.
	Timesteps int
	// Fields lists the stored variables.
	Fields []Field
	// Geo optionally georeferences the dataset.
	Geo *raster.Georef
}

// DefaultCodec returns the block codec used when a field does not name
// one: byte-shuffled DEFLATE matched to the sample width for multi-byte
// types (the filter that gives IDX its size advantage over plain
// DEFLATE containers on scientific floats), plain DEFLATE for bytes.
func DefaultCodec(d DType) string {
	switch d.Size() {
	case 2:
		return "shuffle2-zlib"
	case 4:
		return "shuffle4-zlib"
	case 8:
		return "shuffle8-zlib"
	default:
		return "zlib"
	}
}

// DefaultBitsPerBlock is the block size used when none is specified:
// 2^16 samples per block (256 KiB of float32), matching OpenVisus's
// common configuration.
const DefaultBitsPerBlock = 16

// MetaObjectName is the backend object holding the dataset descriptor.
const MetaObjectName = "dataset.idx"

// NewMeta constructs a Meta for a 2D dataset with the given dimensions and
// fields, guessing the bitmask and applying defaults.
func NewMeta(dims []int, fields []Field) (Meta, error) {
	if len(dims) == 0 {
		return Meta{}, fmt.Errorf("idx: no dimensions")
	}
	for i, d := range dims {
		if d <= 0 {
			return Meta{}, fmt.Errorf("idx: dimension %d is %d; must be positive", i, d)
		}
	}
	if len(fields) == 0 {
		return Meta{}, fmt.Errorf("idx: a dataset needs at least one field")
	}
	mask, err := hz.Guess(dims)
	if err != nil {
		return Meta{}, err
	}
	m := Meta{
		Version:      1,
		Dims:         append([]int(nil), dims...),
		Bits:         mask,
		BitsPerBlock: DefaultBitsPerBlock,
		Timesteps:    1,
		Fields:       append([]Field(nil), fields...),
	}
	for i := range m.Fields {
		if m.Fields[i].Codec == "" {
			m.Fields[i].Codec = DefaultCodec(m.Fields[i].Type)
		}
	}
	if m.BitsPerBlock > m.Bits.Bits() {
		m.BitsPerBlock = m.Bits.Bits()
	}
	return m, m.Validate()
}

// Validate checks the descriptor's invariants.
func (m *Meta) Validate() error {
	if m.Version != 1 {
		return fmt.Errorf("idx: unsupported descriptor version %d", m.Version)
	}
	if len(m.Dims) == 0 || len(m.Dims) != m.Bits.Dims() {
		return fmt.Errorf("idx: %d dims but bitmask addresses %d", len(m.Dims), m.Bits.Dims())
	}
	for a, d := range m.Dims {
		if d <= 0 {
			return fmt.Errorf("idx: dimension %d is %d", a, d)
		}
		if d > 1<<m.Bits.AxisBits(a) {
			return fmt.Errorf("idx: dimension %d extent %d exceeds bitmask capacity %d", a, d, 1<<m.Bits.AxisBits(a))
		}
	}
	if m.BitsPerBlock < 1 || m.BitsPerBlock > m.Bits.Bits() {
		return fmt.Errorf("idx: bitsperblock %d outside [1,%d]", m.BitsPerBlock, m.Bits.Bits())
	}
	if m.Timesteps < 1 {
		return fmt.Errorf("idx: %d timesteps", m.Timesteps)
	}
	if len(m.Fields) == 0 {
		return fmt.Errorf("idx: no fields")
	}
	seen := map[string]bool{}
	for _, f := range m.Fields {
		if !validFieldName(f.Name) {
			return fmt.Errorf("idx: invalid field name %q", f.Name)
		}
		if seen[f.Name] {
			return fmt.Errorf("idx: duplicate field %q", f.Name)
		}
		seen[f.Name] = true
		if _, err := compress.Lookup(f.Codec); err != nil {
			return fmt.Errorf("idx: field %q: %w", f.Name, err)
		}
		if strings.HasPrefix(f.Codec, "zfp") && f.Type != Float32 {
			return fmt.Errorf("idx: field %q: lossy codec %q requires float32 samples", f.Name, f.Codec)
		}
	}
	return nil
}

func validFieldName(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Field returns the named field's descriptor.
func (m *Meta) Field(name string) (Field, error) {
	for _, f := range m.Fields {
		if f.Name == name {
			return f, nil
		}
	}
	return Field{}, fmt.Errorf("idx: dataset has no field %q", name)
}

// MaxLevel returns the finest HZ resolution level (== total bitmask bits).
func (m *Meta) MaxLevel() int { return m.Bits.Bits() }

// NumBlocks returns the number of blocks per field per timestep.
func (m *Meta) NumBlocks() int {
	total := uint64(1) << m.Bits.Bits()
	per := uint64(1) << m.BitsPerBlock
	return int((total + per - 1) / per)
}

// BlockSamples returns the number of samples per block.
func (m *Meta) BlockSamples() int { return 1 << m.BitsPerBlock }

// MarshalText renders the descriptor in the line-oriented .idx format:
//
//	idx(1)
//	box 0 299 0 199
//	bits V0101...
//	bitsperblock 16
//	timesteps 3
//	geo -90.31 36.68 0.000277 0.000277
//	field elevation float32 zlib fill=0
func (m *Meta) MarshalText() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "idx(%d)\n", m.Version)
	sb.WriteString("box")
	for _, d := range m.Dims {
		fmt.Fprintf(&sb, " 0 %d", d-1)
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "bits %s\n", m.Bits)
	fmt.Fprintf(&sb, "bitsperblock %d\n", m.BitsPerBlock)
	fmt.Fprintf(&sb, "timesteps %d\n", m.Timesteps)
	if m.Geo != nil {
		fmt.Fprintf(&sb, "geo %g %g %g %g\n", m.Geo.OriginX, m.Geo.OriginY, m.Geo.PixelW, m.Geo.PixelH)
	}
	for _, f := range m.Fields {
		fmt.Fprintf(&sb, "field %s %s %s fill=%g\n", f.Name, f.Type, f.Codec, f.Fill)
	}
	return []byte(sb.String()), nil
}

// UnmarshalText parses the .idx descriptor format written by MarshalText.
func (m *Meta) UnmarshalText(data []byte) error {
	*m = Meta{}
	lines := strings.Split(string(data), "\n")
	for lineNo, line := range lines {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		key := fields[0]
		args := fields[1:]
		var err error
		switch {
		case strings.HasPrefix(key, "idx(") && strings.HasSuffix(key, ")"):
			m.Version, err = strconv.Atoi(key[4 : len(key)-1])
		case key == "box":
			err = m.parseBox(args)
		case key == "bits":
			if len(args) != 1 {
				err = fmt.Errorf("want 1 argument")
				break
			}
			m.Bits, err = hz.Parse(args[0])
		case key == "bitsperblock":
			if len(args) != 1 {
				err = fmt.Errorf("want 1 argument")
				break
			}
			m.BitsPerBlock, err = strconv.Atoi(args[0])
		case key == "timesteps":
			if len(args) != 1 {
				err = fmt.Errorf("want 1 argument")
				break
			}
			m.Timesteps, err = strconv.Atoi(args[0])
		case key == "geo":
			err = m.parseGeo(args)
		case key == "field":
			err = m.parseField(args)
		default:
			err = fmt.Errorf("unknown directive %q", key)
		}
		if err != nil {
			return fmt.Errorf("idx: descriptor line %d (%q): %w", lineNo+1, line, err)
		}
	}
	return m.Validate()
}

func (m *Meta) parseBox(args []string) error {
	if len(args) == 0 || len(args)%2 != 0 {
		return fmt.Errorf("box needs pairs of bounds")
	}
	m.Dims = nil
	for i := 0; i < len(args); i += 2 {
		lo, err := strconv.Atoi(args[i])
		if err != nil {
			return err
		}
		hi, err := strconv.Atoi(args[i+1])
		if err != nil {
			return err
		}
		if lo != 0 || hi < lo {
			return fmt.Errorf("box axis [%d,%d] must start at 0", lo, hi)
		}
		m.Dims = append(m.Dims, hi+1)
	}
	return nil
}

func (m *Meta) parseGeo(args []string) error {
	if len(args) != 4 {
		return fmt.Errorf("geo needs 4 values")
	}
	vals := make([]float64, 4)
	for i, a := range args {
		v, err := strconv.ParseFloat(a, 64)
		if err != nil {
			return err
		}
		vals[i] = v
	}
	m.Geo = &raster.Georef{OriginX: vals[0], OriginY: vals[1], PixelW: vals[2], PixelH: vals[3]}
	return nil
}

func (m *Meta) parseField(args []string) error {
	if len(args) < 3 {
		return fmt.Errorf("field needs name, type, codec")
	}
	dt, err := ParseDType(args[1])
	if err != nil {
		return err
	}
	f := Field{Name: args[0], Type: dt, Codec: args[2]}
	for _, extra := range args[3:] {
		if v, ok := strings.CutPrefix(extra, "fill="); ok {
			fv, err := strconv.ParseFloat(v, 32)
			if err != nil {
				return fmt.Errorf("fill: %w", err)
			}
			f.Fill = float32(fv)
		}
	}
	m.Fields = append(m.Fields, f)
	return nil
}
