package idx

import (
	"context"
	"math"
	"testing"

	"nsdfgo/internal/dem"
)

func TestLossyFieldRoundTripWithinTolerance(t *testing.T) {
	const tol = 0.01
	meta, err := NewMeta([]int{128, 128}, []Field{{Name: "elevation", Type: Float32, Codec: "zfp-0.01"}})
	if err != nil {
		t.Fatal(err)
	}
	meta.BitsPerBlock = 10
	be := NewMemBackend()
	ds, err := Create(context.Background(), be, meta)
	if err != nil {
		t.Fatal(err)
	}
	g := dem.Scale(dem.FBM(128, 128, 3, dem.DefaultFBM()), 0, 2000)
	if err := ds.WriteGrid(context.Background(), "elevation", 0, g); err != nil {
		t.Fatal(err)
	}
	out, _, err := ds.ReadFull(context.Background(), "elevation", 0)
	if err != nil {
		t.Fatal(err)
	}
	maxErr := 0.0
	for i := range g.Data {
		if d := math.Abs(float64(g.Data[i] - out.Data[i])); d > maxErr {
			maxErr = d
		}
	}
	if maxErr > tol {
		t.Errorf("max error %v exceeds tolerance %v", maxErr, tol)
	}
	if maxErr == 0 {
		t.Error("lossy codec produced exact values over a whole terrain field; suspicious")
	}
}

func TestLossyFieldSmallerThanLossless(t *testing.T) {
	g := dem.Scale(dem.FBM(128, 128, 3, dem.DefaultFBM()), 0, 2000)
	stored := func(codec string) int64 {
		meta, err := NewMeta([]int{128, 128}, []Field{{Name: "f", Type: Float32, Codec: codec}})
		if err != nil {
			t.Fatal(err)
		}
		ds, err := Create(context.Background(), NewMemBackend(), meta)
		if err != nil {
			t.Fatal(err)
		}
		if err := ds.WriteGrid(context.Background(), "f", 0, g); err != nil {
			t.Fatal(err)
		}
		n, err := ds.StoredBytes(context.Background(), "f", 0)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	lossless := stored("shuffle4-zlib")
	lossy := stored("zfp-0.1")
	if lossy*2 > lossless {
		t.Errorf("zfp-0.1 stored %d bytes vs lossless %d; expected >=2x reduction", lossy, lossless)
	}
}

func TestLossyCodecRequiresFloat32(t *testing.T) {
	_, err := NewMeta([]int{16, 16}, []Field{{Name: "h", Type: Uint8, Codec: "zfp-0.01"}})
	if err == nil {
		t.Error("lossy codec on uint8 field accepted")
	}
}
