package idx

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Backend is the object-store abstraction an IDX dataset persists to. The
// storage package's services (sealstore, dataverse, HTTP object store)
// are adapted to this interface by the query layer; this package ships a
// memory backend and a directory backend so datasets work standalone.
//
// Every method takes the caller's context: a dataset served over a
// wide-area object store must abort promptly when the request that
// triggered the I/O is cancelled or deadline-bounded. Implementations
// must honour ctx cancellation (at minimum by checking ctx.Err() before
// doing work) and must be safe for concurrent use.
type Backend interface {
	// Get returns the object stored under name, or an error satisfying
	// IsNotExist when absent.
	Get(ctx context.Context, name string) ([]byte, error)
	// Put stores data under name, replacing any previous object.
	Put(ctx context.Context, name string, data []byte) error
	// List returns all object names with the given prefix, sorted.
	List(ctx context.Context, prefix string) ([]string, error)
}

// Deleter is the optional backend capability Create uses to clear stale
// blocks when re-creating a dataset in place. All of this repository's
// backends implement it; a backend that does not makes Create refuse to
// overwrite an existing dataset's blocks.
type Deleter interface {
	// Delete removes the object stored under name; deleting a missing
	// object is not an error.
	Delete(ctx context.Context, name string) error
}

// NotExistError reports a missing object.
type NotExistError struct {
	// Name is the object that was requested.
	Name string
}

// Error implements error.
func (e *NotExistError) Error() string { return fmt.Sprintf("idx: object %q does not exist", e.Name) }

// IsNotExist reports whether err indicates a missing object.
func IsNotExist(err error) bool {
	var ne *NotExistError
	return errors.As(err, &ne)
}

// MemBackend is an in-memory Backend, useful for tests and for measuring
// stored dataset sizes.
type MemBackend struct {
	mu      sync.RWMutex
	objects map[string][]byte
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{objects: make(map[string][]byte)}
}

// Get implements Backend.
func (m *MemBackend) Get(ctx context.Context, name string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.objects[name]
	if !ok {
		return nil, &NotExistError{Name: name}
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// Put implements Backend.
func (m *MemBackend) Put(ctx context.Context, name string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.objects[name] = cp
	return nil
}

// Delete implements Deleter.
func (m *MemBackend) Delete(ctx context.Context, name string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.objects, name)
	return nil
}

// List implements Backend.
func (m *MemBackend) List(ctx context.Context, prefix string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.objects))
	for name := range m.objects {
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// TotalBytes returns the sum of stored object sizes; the experiment
// harness uses it to measure dataset footprints (the ~20 % claim).
func (m *MemBackend) TotalBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var total int64
	for _, data := range m.objects {
		total += int64(len(data))
	}
	return total
}

// NumObjects returns the number of stored objects.
func (m *MemBackend) NumObjects() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.objects)
}

// DirBackend stores objects as files beneath a root directory. Object
// names use '/' separators and map to subdirectories.
type DirBackend struct {
	root string
}

// NewDirBackend creates (if needed) and wraps the given directory.
func NewDirBackend(root string) (*DirBackend, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("idx: create backend root: %w", err)
	}
	return &DirBackend{root: root}, nil
}

func (d *DirBackend) path(name string) (string, error) {
	clean := filepath.Clean(filepath.FromSlash(name))
	if strings.HasPrefix(clean, "..") || filepath.IsAbs(clean) {
		return "", fmt.Errorf("idx: object name %q escapes backend root", name)
	}
	return filepath.Join(d.root, clean), nil
}

// Get implements Backend.
func (d *DirBackend) Get(ctx context.Context, name string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p, err := d.path(name)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return nil, &NotExistError{Name: name}
	}
	if err != nil {
		return nil, fmt.Errorf("idx: read %q: %w", name, err)
	}
	return data, nil
}

// Put implements Backend.
func (d *DirBackend) Put(ctx context.Context, name string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p, err := d.path(name)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("idx: mkdir for %q: %w", name, err)
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("idx: write %q: %w", name, err)
	}
	if err := os.Rename(tmp, p); err != nil {
		return fmt.Errorf("idx: rename %q: %w", name, err)
	}
	return nil
}

// Delete implements Deleter.
func (d *DirBackend) Delete(ctx context.Context, name string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p, err := d.path(name)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("idx: delete %q: %w", name, err)
	}
	return nil
}

// List implements Backend.
func (d *DirBackend) List(ctx context.Context, prefix string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var out []string
	err := filepath.WalkDir(d.root, func(p string, de os.DirEntry, err error) error {
		if err != nil || de.IsDir() {
			return err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		rel, err := filepath.Rel(d.root, p)
		if err != nil {
			return err
		}
		name := filepath.ToSlash(rel)
		if strings.HasPrefix(name, prefix) && !strings.HasSuffix(name, ".tmp") {
			out = append(out, name)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("idx: list %q: %w", prefix, err)
	}
	sort.Strings(out)
	return out, nil
}
