package idx

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"nsdfgo/internal/telemetry/trace"
)

// This file measures what request tracing costs the hot read path: the
// same warm-cache ReadBox as the kernel benchmark, run once with a plain
// context and once under an active trace (root span in the context, the
// shape every dashboard request has). The observability PR's acceptance
// gate is that tracing adds at most a few percent — the per-run clock
// reads and per-request span records must stay invisible next to the
// assembly work itself.

// traceOverheadSample is one measured variant in BENCH_trace_overhead.json.
type traceOverheadSample struct {
	NsPerOp     float64 `json:"ns_per_op"`
	MsPerOp     float64 `json:"ms_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// measureTraceVariant times fn over iters iterations, repeating the
// whole block reps times and keeping the fastest repetition — the
// standard defence against scheduler noise when gating on a small
// percentage difference.
func measureTraceVariant(iters, reps int, fn func()) traceOverheadSample {
	best := traceOverheadSample{NsPerOp: -1}
	for r := 0; r < reps; r++ {
		fn() // warm-up
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		ns := float64(elapsed.Nanoseconds()) / float64(iters)
		if best.NsPerOp < 0 || ns < best.NsPerOp {
			best = traceOverheadSample{
				NsPerOp:     ns,
				MsPerOp:     ns / 1e6,
				AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(iters),
			}
		}
	}
	return best
}

// TestBenchTraceOverheadEmit measures traced vs untraced ReadBox and
// writes BENCH_trace_overhead.json. Gated on NSDF_BENCH_TRACE_ITERS
// (unset or 0 skips) so plain `go test ./...` stays fast;
// NSDF_BENCH_TRACE_OUT overrides the output path (default: a throwaway
// temp file, keeping the smoke run in `make check` side-effect free).
// The run fails if tracing costs more than 5% — the budget the
// observability work promised the read path.
func TestBenchTraceOverheadEmit(t *testing.T) {
	iters, _ := strconv.Atoi(os.Getenv("NSDF_BENCH_TRACE_ITERS"))
	if iters <= 0 {
		t.Skip("set NSDF_BENCH_TRACE_ITERS>=1 to run the trace overhead benchmark emitter")
	}
	reps := 3
	if iters == 1 {
		reps = 1 // smoke mode: just prove the harness runs
	}
	outPath := os.Getenv("NSDF_BENCH_TRACE_OUT")
	if outPath == "" {
		outPath = t.TempDir() + "/BENCH_trace_overhead.json"
	}
	ds, _ := newKernelBenchDataset(t)
	box := ds.FullBox()
	level := ds.Meta.MaxLevel()
	col := trace.NewCollector(4)

	untraced := measureTraceVariant(iters, reps, func() {
		if _, _, err := ds.ReadBox(context.Background(), "v", 0, box, level); err != nil {
			t.Fatal(err)
		}
	})
	traced := measureTraceVariant(iters, reps, func() {
		root := col.StartTrace("", "bench")
		ctx := trace.NewContext(context.Background(), root)
		if _, _, err := ds.ReadBox(ctx, "v", 0, box, level); err != nil {
			t.Fatal(err)
		}
		root.End()
	})

	overheadPct := 0.0
	if untraced.NsPerOp > 0 {
		overheadPct = (traced.NsPerOp - untraced.NsPerOp) / untraced.NsPerOp * 100
	}
	doc := struct {
		Description string              `json:"description"`
		Dataset     string              `json:"dataset"`
		Iters       int                 `json:"iterations"`
		GOMAXPROCS  int                 `json:"gomaxprocs"`
		Untraced    traceOverheadSample `json:"read_box_untraced"`
		Traced      traceOverheadSample `json:"read_box_traced"`
		OverheadPct float64             `json:"overhead_pct"`
		BudgetPct   float64             `json:"budget_pct"`
	}{
		Description: "ReadBox with vs without an active trace in the context; warm block cache, raw codec. Regenerate with `make bench-trace`.",
		Dataset:     fmt.Sprintf("%dx%d float32, 2^%d-sample blocks", benchSide, benchSide, ds.Meta.BitsPerBlock),
		Iters:       iters,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Untraced:    untraced,
		Traced:      traced,
		OverheadPct: overheadPct,
		BudgetPct:   5,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("ReadBox untraced %.2fms, traced %.2fms: %.2f%% overhead (budget 5%%)",
		untraced.MsPerOp, traced.MsPerOp, overheadPct)
	t.Logf("wrote %s", outPath)
	if reps > 1 && overheadPct > 5 {
		t.Fatalf("tracing overhead %.2f%% exceeds the 5%% budget", overheadPct)
	}
}

// BenchmarkReadBoxTraced is the stock-go-bench view of the same
// comparison, for ad-hoc runs with -bench.
func BenchmarkReadBoxTraced(b *testing.B) {
	ds, _ := newKernelBenchDataset(b)
	box := ds.FullBox()
	level := ds.Meta.MaxLevel()
	b.Run("untraced", func(b *testing.B) {
		b.SetBytes(int64(benchSide * benchSide * 4))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := ds.ReadBox(context.Background(), "v", 0, box, level); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		col := trace.NewCollector(4)
		b.SetBytes(int64(benchSide * benchSide * 4))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			root := col.StartTrace("", "bench")
			ctx := trace.NewContext(context.Background(), root)
			if _, _, err := ds.ReadBox(ctx, "v", 0, box, level); err != nil {
				b.Fatal(err)
			}
			root.End()
		}
	})
}
