// Package netmon reimplements the NSDF-Plugin's network monitoring role
// (Luettgau et al., HPDC 2023: "Studying Latency and Throughput
// Constraints for Geo-Distributed Data in the National Science Data
// Fabric"): probing latency and throughput between the testbed's entry
// points — "eight diverse locations in the United States, leveraging
// resources like Internet2 and Open Science Grid" — and reporting the
// pairwise constraint matrices of Fig. 2's topology.
//
// The real WAN is a hardware gate, so the links are simulated with a
// physical model: great-circle distance over fibre (≈ 2/3 c) plus router
// overhead for latency, provider-class uplink capacity with lognormal-ish
// congestion noise for throughput. Every probe stream is seeded, so runs
// are reproducible.
package netmon

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// Site is one NSDF testbed entry point.
type Site struct {
	// Name is the short site identifier used in reports.
	Name string
	// City locates the site.
	City string
	// Lat and Lon are the site coordinates in degrees.
	Lat, Lon float64
	// Provider is the hosting network ("internet2", "osg", "commercial").
	Provider string
	// UplinkBps is the site's uplink capacity in bits per second.
	UplinkBps float64
}

// Testbed returns the simulated 8-site NSDF testbed of Fig. 2.
func Testbed() []Site {
	return []Site{
		{Name: "sdsc", City: "San Diego, CA", Lat: 32.88, Lon: -117.24, Provider: "internet2", UplinkBps: 100e9},
		{Name: "utah", City: "Salt Lake City, UT", Lat: 40.76, Lon: -111.85, Provider: "internet2", UplinkBps: 100e9},
		{Name: "utk", City: "Knoxville, TN", Lat: 35.95, Lon: -83.93, Provider: "internet2", UplinkBps: 40e9},
		{Name: "umich", City: "Ann Arbor, MI", Lat: 42.28, Lon: -83.74, Provider: "internet2", UplinkBps: 100e9},
		{Name: "mghpcc", City: "Holyoke, MA", Lat: 42.20, Lon: -72.62, Provider: "internet2", UplinkBps: 40e9},
		{Name: "tacc", City: "Austin, TX", Lat: 30.29, Lon: -97.74, Provider: "osg", UplinkBps: 100e9},
		{Name: "ncsa", City: "Urbana, IL", Lat: 40.11, Lon: -88.21, Provider: "osg", UplinkBps: 40e9},
		{Name: "cloud", City: "Ashburn, VA", Lat: 39.04, Lon: -77.49, Provider: "commercial", UplinkBps: 10e9},
	}
}

// Network simulates the links among a set of sites.
type Network struct {
	sites  map[string]Site
	names  []string
	mu     sync.Mutex
	rng    *rand.Rand
	params LinkParams
	// degraded maps "a->b" to {rttFactor, bwFactor} multipliers.
	degraded map[string][2]float64
}

// LinkParams tunes the physical link model.
type LinkParams struct {
	// FibreKmPerMs is signal distance per millisecond (~200 km/ms in fibre).
	FibreKmPerMs float64
	// RouterOverhead is fixed per-path latency (routing, queuing floor).
	RouterOverhead time.Duration
	// JitterFrac is the coefficient of variation of latency noise.
	JitterFrac float64
	// CongestionFrac is the mean fractional throughput loss to congestion.
	CongestionFrac float64
	// PathEfficiency scales single-stream TCP throughput relative to the
	// bottleneck uplink (protocol + RTT effects).
	PathEfficiency float64
}

// DefaultLinkParams returns the model used by the Fig. 2 experiments.
func DefaultLinkParams() LinkParams {
	return LinkParams{
		FibreKmPerMs:   200,
		RouterOverhead: 2 * time.Millisecond,
		JitterFrac:     0.08,
		CongestionFrac: 0.25,
		PathEfficiency: 0.6,
	}
}

// NewNetwork builds a simulated network over sites with the default link
// model. The seed fixes all probe noise.
func NewNetwork(sites []Site, seed int64) (*Network, error) {
	return NewNetworkWithParams(sites, seed, DefaultLinkParams())
}

// NewNetworkWithParams is NewNetwork with an explicit link model.
func NewNetworkWithParams(sites []Site, seed int64, params LinkParams) (*Network, error) {
	if len(sites) < 2 {
		return nil, fmt.Errorf("netmon: need at least 2 sites, got %d", len(sites))
	}
	n := &Network{sites: make(map[string]Site, len(sites)), rng: rand.New(rand.NewSource(seed)), params: params}
	for _, s := range sites {
		if _, dup := n.sites[s.Name]; dup {
			return nil, fmt.Errorf("netmon: duplicate site %q", s.Name)
		}
		if s.UplinkBps <= 0 {
			return nil, fmt.Errorf("netmon: site %q has no uplink capacity", s.Name)
		}
		n.sites[s.Name] = s
		n.names = append(n.names, s.Name)
	}
	sort.Strings(n.names)
	return n, nil
}

// Sites returns the site names, sorted.
func (n *Network) Sites() []string { return append([]string(nil), n.names...) }

// Site returns a site by name.
func (n *Network) Site(name string) (Site, error) {
	s, ok := n.sites[name]
	if !ok {
		return Site{}, fmt.Errorf("netmon: unknown site %q", name)
	}
	return s, nil
}

// haversineKm computes the great-circle distance between two sites.
func haversineKm(a, b Site) float64 {
	const earthRadiusKm = 6371
	toRad := func(deg float64) float64 { return deg * math.Pi / 180 }
	dLat := toRad(b.Lat - a.Lat)
	dLon := toRad(b.Lon - a.Lon)
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(toRad(a.Lat))*math.Cos(toRad(b.Lat))*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Sqrt(h))
}

// BaseRTT returns the noise-free round-trip time between two sites.
func (n *Network) BaseRTT(a, b string) (time.Duration, error) {
	sa, err := n.Site(a)
	if err != nil {
		return 0, err
	}
	sb, err := n.Site(b)
	if err != nil {
		return 0, err
	}
	if a == b {
		return 100 * time.Microsecond, nil // loopback-ish
	}
	// Fibre paths are ~40% longer than great-circle.
	pathKm := haversineKm(sa, sb) * 1.4
	oneWayMs := pathKm / n.params.FibreKmPerMs
	return time.Duration(2*oneWayMs*float64(time.Millisecond)) + n.params.RouterOverhead, nil
}

// ProbeLatency returns one latency sample between two sites: the base RTT
// plus non-negative jitter.
func (n *Network) ProbeLatency(a, b string) (time.Duration, error) {
	base, err := n.BaseRTT(a, b)
	if err != nil {
		return 0, err
	}
	n.mu.Lock()
	noise := math.Abs(n.rng.NormFloat64()) * n.params.JitterFrac
	n.mu.Unlock()
	rttFactor, _ := n.degradation(a, b)
	sample := base + time.Duration(noise*float64(base))
	return time.Duration(float64(sample) * rttFactor), nil
}

// ProbeThroughput returns one throughput sample in bits per second for a
// bulk transfer between two sites. The bottleneck is the smaller uplink,
// derated by path efficiency and congestion noise.
func (n *Network) ProbeThroughput(a, b string) (float64, error) {
	sa, err := n.Site(a)
	if err != nil {
		return 0, err
	}
	sb, err := n.Site(b)
	if err != nil {
		return 0, err
	}
	bottleneck := math.Min(sa.UplinkBps, sb.UplinkBps)
	if a == b {
		return bottleneck, nil
	}
	n.mu.Lock()
	congestion := math.Abs(n.rng.NormFloat64()) * n.params.CongestionFrac
	n.mu.Unlock()
	if congestion > 0.9 {
		congestion = 0.9
	}
	_, bwFactor := n.degradation(a, b)
	return bottleneck * n.params.PathEfficiency * (1 - congestion) / bwFactor, nil
}

// TransferTime estimates moving payloadBytes between two sites with the
// current probe conditions: one RTT of setup plus payload over sampled
// throughput.
func (n *Network) TransferTime(a, b string, payloadBytes int64) (time.Duration, error) {
	rtt, err := n.ProbeLatency(a, b)
	if err != nil {
		return 0, err
	}
	bps, err := n.ProbeThroughput(a, b)
	if err != nil {
		return 0, err
	}
	seconds := float64(payloadBytes*8) / bps
	return rtt + time.Duration(seconds*float64(time.Second)), nil
}

// PairStats aggregates the probes of one site pair.
type PairStats struct {
	// From and To are the site names.
	From, To string
	// MinRTT, MeanRTT, and MaxRTT summarise latency samples.
	MinRTT, MeanRTT, MaxRTT time.Duration
	// MeanBps and MinBps summarise throughput samples (bits/second).
	MeanBps, MinBps float64
	// Probes is the per-pair sample count.
	Probes int
}

// Report is the outcome of a full-mesh measurement campaign.
type Report struct {
	// Sites lists the probed sites, sorted.
	Sites []string
	// Pairs maps "from->to" to its aggregated stats.
	Pairs map[string]PairStats
}

// Measure probes every ordered site pair `probes` times and aggregates
// the results — the NSDF-Plugin's periodic measurement sweep.
func (n *Network) Measure(probes int) (*Report, error) {
	if probes < 1 {
		return nil, fmt.Errorf("netmon: need at least 1 probe, got %d", probes)
	}
	rep := &Report{Sites: n.Sites(), Pairs: make(map[string]PairStats)}
	for _, from := range rep.Sites {
		for _, to := range rep.Sites {
			if from == to {
				continue
			}
			ps := PairStats{From: from, To: to, MinRTT: time.Duration(math.MaxInt64), MinBps: math.Inf(1), Probes: probes}
			var rttSum time.Duration
			var bpsSum float64
			for p := 0; p < probes; p++ {
				rtt, err := n.ProbeLatency(from, to)
				if err != nil {
					return nil, err
				}
				bps, err := n.ProbeThroughput(from, to)
				if err != nil {
					return nil, err
				}
				rttSum += rtt
				bpsSum += bps
				if rtt < ps.MinRTT {
					ps.MinRTT = rtt
				}
				if rtt > ps.MaxRTT {
					ps.MaxRTT = rtt
				}
				if bps < ps.MinBps {
					ps.MinBps = bps
				}
			}
			ps.MeanRTT = rttSum / time.Duration(probes)
			ps.MeanBps = bpsSum / float64(probes)
			rep.Pairs[from+"->"+to] = ps
		}
	}
	return rep, nil
}

// Constraint flags a pair violating a requirement.
type Constraint struct {
	// Pair is "from->to".
	Pair string
	// Reason describes the violated requirement.
	Reason string
}

// Constraints returns the pairs whose mean RTT exceeds maxRTT or whose
// mean throughput falls below minBps — the "throughput and latency
// constraints" NSDF-Plugin identifies.
func (r *Report) Constraints(maxRTT time.Duration, minBps float64) []Constraint {
	var out []Constraint
	keys := make([]string, 0, len(r.Pairs))
	for k := range r.Pairs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ps := r.Pairs[k]
		if maxRTT > 0 && ps.MeanRTT > maxRTT {
			out = append(out, Constraint{Pair: k, Reason: fmt.Sprintf("mean RTT %.1fms exceeds %.1fms", msOf(ps.MeanRTT), msOf(maxRTT))})
		}
		if minBps > 0 && ps.MeanBps < minBps {
			out = append(out, Constraint{Pair: k, Reason: fmt.Sprintf("mean throughput %.2fGbps below %.2fGbps", ps.MeanBps/1e9, minBps/1e9)})
		}
	}
	return out
}

func msOf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// LatencyMatrix renders the pairwise mean RTTs as a fixed-width table.
func (r *Report) LatencyMatrix() string {
	return r.matrix("mean RTT (ms)", func(ps PairStats) string {
		return fmt.Sprintf("%7.1f", msOf(ps.MeanRTT))
	})
}

// ThroughputMatrix renders the pairwise mean throughput in Gbps.
func (r *Report) ThroughputMatrix() string {
	return r.matrix("mean throughput (Gbps)", func(ps PairStats) string {
		return fmt.Sprintf("%7.2f", ps.MeanBps/1e9)
	})
}

func (r *Report) matrix(title string, cell func(PairStats) string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%8s", title, "")
	for _, to := range r.Sites {
		fmt.Fprintf(&sb, " %7s", to)
	}
	sb.WriteByte('\n')
	for _, from := range r.Sites {
		fmt.Fprintf(&sb, "%8s", from)
		for _, to := range r.Sites {
			if from == to {
				fmt.Fprintf(&sb, " %7s", "-")
				continue
			}
			sb.WriteString(" " + cell(r.Pairs[from+"->"+to]))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
