package netmon

import (
	"fmt"
	"sort"
	"time"

	"nsdfgo/internal/telemetry"
)

// Degrade applies multipliers to one directed link, simulating congestion
// or a failing path: subsequent latency probes are scaled by rttFactor
// and throughput probes by bwFactor. Factors of 1 restore the link.
func (n *Network) Degrade(a, b string, rttFactor, bwFactor float64) error {
	if _, err := n.Site(a); err != nil {
		return err
	}
	if _, err := n.Site(b); err != nil {
		return err
	}
	if rttFactor <= 0 || bwFactor <= 0 {
		return fmt.Errorf("netmon: degradation factors must be positive")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.degraded == nil {
		n.degraded = map[string][2]float64{}
	}
	key := a + "->" + b
	if rttFactor == 1 && bwFactor == 1 {
		delete(n.degraded, key)
	} else {
		n.degraded[key] = [2]float64{rttFactor, bwFactor}
	}
	return nil
}

// degradation returns the active multipliers for a directed pair.
func (n *Network) degradation(a, b string) (rtt, bw float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if f, ok := n.degraded[a+"->"+b]; ok {
		return f[0], f[1]
	}
	return 1, 1
}

// Monitor runs the NSDF-Plugin's continuous measurement loop: periodic
// full-mesh sweeps are retained in a sliding window, and the latest sweep
// is compared against the historical baseline to flag degrading links.
type Monitor struct {
	net    *Network
	window int
	// history holds up to window reports, oldest first.
	history []*Report

	sweeps *telemetry.Counter
	probes *telemetry.Counter
	alerts *telemetry.Counter
	rtt    *telemetry.Histogram
}

// NewMonitor wraps a network with a sliding window of `window` sweeps
// (minimum 2: baseline plus latest).
func NewMonitor(net *Network, window int) (*Monitor, error) {
	if window < 2 {
		return nil, fmt.Errorf("netmon: monitor window %d; need at least 2", window)
	}
	return &Monitor{net: net, window: window}, nil
}

// SetTelemetry attaches a metrics registry. Each sweep then records:
//
//	nsdf_netmon_sweeps_total   completed sweeps
//	nsdf_netmon_probes_total   individual probes sent
//	nsdf_netmon_alerts_total   degradation alerts raised
//	nsdf_netmon_rtt_seconds    per-pair mean RTT distribution
func (m *Monitor) SetTelemetry(reg *telemetry.Registry) {
	m.sweeps = reg.Counter("nsdf_netmon_sweeps_total")
	m.probes = reg.Counter("nsdf_netmon_probes_total")
	m.alerts = reg.Counter("nsdf_netmon_alerts_total")
	m.rtt = reg.Histogram("nsdf_netmon_rtt_seconds")
}

// Tick performs one measurement sweep and appends it to the window.
func (m *Monitor) Tick(probes int) (*Report, error) {
	rep, err := m.net.Measure(probes)
	if err != nil {
		return nil, err
	}
	m.history = append(m.history, rep)
	if len(m.history) > m.window {
		m.history = m.history[len(m.history)-m.window:]
	}
	if m.sweeps != nil {
		m.sweeps.Inc()
		for _, ps := range rep.Pairs {
			m.probes.Add(int64(ps.Probes))
			m.rtt.Observe(ps.MeanRTT.Seconds())
		}
	}
	return rep, nil
}

// Sweeps returns how many reports the window currently holds.
func (m *Monitor) Sweeps() int { return len(m.history) }

// Alert flags one degrading directed link.
type Alert struct {
	// Pair is "from->to".
	Pair string
	// Reason describes the regression against the baseline.
	Reason string
	// BaselineRTT and LatestRTT document the latency change.
	BaselineRTT, LatestRTT time.Duration
	// BaselineBps and LatestBps document the throughput change.
	BaselineBps, LatestBps float64
}

// Alerts compares the latest sweep against the mean of all earlier sweeps
// and flags pairs whose mean RTT grew by more than rttFactor or whose
// throughput fell below 1/bwFactor of baseline. It requires at least two
// sweeps.
func (m *Monitor) Alerts(rttFactor, bwFactor float64) ([]Alert, error) {
	if len(m.history) < 2 {
		return nil, fmt.Errorf("netmon: %d sweeps in window; need at least 2 for a baseline", len(m.history))
	}
	if rttFactor <= 1 || bwFactor <= 1 {
		return nil, fmt.Errorf("netmon: alert factors must exceed 1")
	}
	latest := m.history[len(m.history)-1]
	baselineReports := m.history[:len(m.history)-1]

	var out []Alert
	keys := make([]string, 0, len(latest.Pairs))
	for k := range latest.Pairs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		cur := latest.Pairs[k]
		var rttSum time.Duration
		var bpsSum float64
		n := 0
		for _, rep := range baselineReports {
			if ps, ok := rep.Pairs[k]; ok {
				rttSum += ps.MeanRTT
				bpsSum += ps.MeanBps
				n++
			}
		}
		if n == 0 {
			continue
		}
		baseRTT := rttSum / time.Duration(n)
		baseBps := bpsSum / float64(n)
		alert := Alert{Pair: k, BaselineRTT: baseRTT, LatestRTT: cur.MeanRTT, BaselineBps: baseBps, LatestBps: cur.MeanBps}
		switch {
		case float64(cur.MeanRTT) > float64(baseRTT)*rttFactor:
			alert.Reason = fmt.Sprintf("RTT %.1fms is %.1fx baseline %.1fms",
				msOf(cur.MeanRTT), float64(cur.MeanRTT)/float64(baseRTT), msOf(baseRTT))
			out = append(out, alert)
		case cur.MeanBps*bwFactor < baseBps:
			alert.Reason = fmt.Sprintf("throughput %.2fGbps fell to %.0f%% of baseline %.2fGbps",
				cur.MeanBps/1e9, 100*cur.MeanBps/baseBps, baseBps/1e9)
			out = append(out, alert)
		}
	}
	if m.alerts != nil {
		m.alerts.Add(int64(len(out)))
	}
	return out, nil
}
