package netmon

import (
	"strings"
	"testing"
)

func TestDegradeValidation(t *testing.T) {
	n := testNetwork(t)
	if err := n.Degrade("nowhere", "sdsc", 2, 1); err == nil {
		t.Error("unknown site accepted")
	}
	if err := n.Degrade("sdsc", "utah", 0, 1); err == nil {
		t.Error("zero factor accepted")
	}
	if err := n.Degrade("sdsc", "utah", 2, 2); err != nil {
		t.Fatal(err)
	}
}

func TestDegradeAffectsProbes(t *testing.T) {
	n := testNetwork(t)
	base, _ := n.BaseRTT("sdsc", "utah")
	if err := n.Degrade("sdsc", "utah", 3, 4); err != nil {
		t.Fatal(err)
	}
	rtt, err := n.ProbeLatency("sdsc", "utah")
	if err != nil {
		t.Fatal(err)
	}
	if rtt < 3*base {
		t.Errorf("degraded RTT %v below 3x base %v", rtt, base)
	}
	bps, _ := n.ProbeThroughput("sdsc", "utah")
	clean, _ := n.ProbeThroughput("utah", "sdsc") // reverse direction untouched
	if bps*2 > clean {
		t.Errorf("degraded throughput %v not clearly below clean %v", bps, clean)
	}
	// Restore.
	if err := n.Degrade("sdsc", "utah", 1, 1); err != nil {
		t.Fatal(err)
	}
	rtt, _ = n.ProbeLatency("sdsc", "utah")
	if rtt > 2*base {
		t.Errorf("restored RTT %v still degraded", rtt)
	}
}

func TestMonitorWindow(t *testing.T) {
	n := testNetwork(t)
	if _, err := NewMonitor(n, 1); err == nil {
		t.Error("window 1 accepted")
	}
	m, err := NewMonitor(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := m.Tick(3); err != nil {
			t.Fatal(err)
		}
	}
	if m.Sweeps() != 3 {
		t.Errorf("window holds %d sweeps, want 3", m.Sweeps())
	}
}

func TestMonitorAlertsRequireBaseline(t *testing.T) {
	n := testNetwork(t)
	m, _ := NewMonitor(n, 4)
	if _, err := m.Alerts(2, 2); err == nil {
		t.Error("alerts with no sweeps accepted")
	}
	m.Tick(3)
	if _, err := m.Alerts(2, 2); err == nil {
		t.Error("alerts with one sweep accepted")
	}
	m.Tick(3)
	if _, err := m.Alerts(1, 2); err == nil {
		t.Error("factor <= 1 accepted")
	}
}

func TestMonitorDetectsDegradation(t *testing.T) {
	n := testNetwork(t)
	m, _ := NewMonitor(n, 6)
	// Healthy baseline sweeps.
	for i := 0; i < 3; i++ {
		if _, err := m.Tick(5); err != nil {
			t.Fatal(err)
		}
	}
	// No alerts while healthy.
	alerts, err := m.Alerts(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 0 {
		t.Fatalf("false alerts on healthy network: %+v", alerts)
	}
	// Degrade one link hard, sweep again.
	if err := n.Degrade("utk", "umich", 5, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Tick(5); err != nil {
		t.Fatal(err)
	}
	alerts, err = m.Alerts(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range alerts {
		if a.Pair == "utk->umich" {
			found = true
			if !strings.Contains(a.Reason, "RTT") {
				t.Errorf("alert reason %q", a.Reason)
			}
			if a.LatestRTT < a.BaselineRTT*3 {
				t.Errorf("alert RTTs %v vs %v", a.LatestRTT, a.BaselineRTT)
			}
		}
		if a.Pair == "umich->utk" {
			t.Error("reverse direction falsely flagged")
		}
	}
	if !found {
		t.Fatalf("degraded link not flagged; alerts: %+v", alerts)
	}
}

func TestMonitorDetectsThroughputCollapse(t *testing.T) {
	n := testNetwork(t)
	m, _ := NewMonitor(n, 6)
	for i := 0; i < 3; i++ {
		m.Tick(5)
	}
	if err := n.Degrade("sdsc", "tacc", 1, 10); err != nil {
		t.Fatal(err)
	}
	m.Tick(5)
	alerts, err := m.Alerts(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range alerts {
		if a.Pair == "sdsc->tacc" && strings.Contains(a.Reason, "throughput") {
			found = true
		}
	}
	if !found {
		t.Fatalf("throughput collapse not flagged: %+v", alerts)
	}
}

func TestMonitorTransferTimeReflectsDegradation(t *testing.T) {
	n := testNetwork(t)
	before, _ := n.TransferTime("utah", "utk", 1<<30)
	n.Degrade("utah", "utk", 2, 8)
	after, _ := n.TransferTime("utah", "utk", 1<<30)
	if after < 4*before {
		t.Errorf("degraded transfer %v not clearly slower than %v", after, before)
	}
}
