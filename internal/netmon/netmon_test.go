package netmon

import (
	"strings"
	"testing"
	"time"
)

func testNetwork(t *testing.T) *Network {
	t.Helper()
	n, err := NewNetwork(Testbed(), 42)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestTestbedHasEightSites(t *testing.T) {
	sites := Testbed()
	if len(sites) != 8 {
		t.Fatalf("testbed has %d sites, want 8 (paper §III-B)", len(sites))
	}
	seen := map[string]bool{}
	for _, s := range sites {
		if seen[s.Name] {
			t.Errorf("duplicate site %s", s.Name)
		}
		seen[s.Name] = true
		if s.UplinkBps <= 0 {
			t.Errorf("site %s has no uplink", s.Name)
		}
	}
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(nil, 1); err == nil {
		t.Error("empty network accepted")
	}
	if _, err := NewNetwork([]Site{{Name: "only", UplinkBps: 1}}, 1); err == nil {
		t.Error("single-site network accepted")
	}
	dup := []Site{{Name: "a", UplinkBps: 1}, {Name: "a", UplinkBps: 1}}
	if _, err := NewNetwork(dup, 1); err == nil {
		t.Error("duplicate sites accepted")
	}
	noUplink := []Site{{Name: "a", UplinkBps: 1}, {Name: "b"}}
	if _, err := NewNetwork(noUplink, 1); err == nil {
		t.Error("zero uplink accepted")
	}
}

func TestBaseRTTSymmetricAndPositive(t *testing.T) {
	n := testNetwork(t)
	ab, err := n.BaseRTT("sdsc", "mghpcc")
	if err != nil {
		t.Fatal(err)
	}
	ba, _ := n.BaseRTT("mghpcc", "sdsc")
	if ab != ba {
		t.Errorf("asymmetric base RTT: %v vs %v", ab, ba)
	}
	if ab <= 0 {
		t.Errorf("RTT %v", ab)
	}
}

func TestBaseRTTScalesWithDistance(t *testing.T) {
	n := testNetwork(t)
	// San Diego <-> Holyoke spans the continent; Utah <-> San Diego does not.
	far, _ := n.BaseRTT("sdsc", "mghpcc")
	near, _ := n.BaseRTT("sdsc", "utah")
	if far <= near {
		t.Errorf("coast-to-coast RTT %v not above regional %v", far, near)
	}
	// Plausible magnitudes: cross-country fibre RTT is tens of ms.
	if far < 20*time.Millisecond || far > 120*time.Millisecond {
		t.Errorf("cross-country RTT %v outside plausible range", far)
	}
}

func TestProbeLatencyJitterNonNegative(t *testing.T) {
	n := testNetwork(t)
	base, _ := n.BaseRTT("utk", "umich")
	for i := 0; i < 100; i++ {
		got, err := n.ProbeLatency("utk", "umich")
		if err != nil {
			t.Fatal(err)
		}
		if got < base {
			t.Fatalf("probe %v below base %v", got, base)
		}
		if got > 2*base {
			t.Fatalf("probe %v implausibly above base %v", got, base)
		}
	}
}

func TestProbeThroughputBottleneck(t *testing.T) {
	n := testNetwork(t)
	// cloud has a 10 Gbps uplink: any pair with cloud is capped by it.
	for i := 0; i < 50; i++ {
		bps, err := n.ProbeThroughput("sdsc", "cloud")
		if err != nil {
			t.Fatal(err)
		}
		if bps > 10e9 {
			t.Fatalf("throughput %v exceeds bottleneck uplink", bps)
		}
		if bps <= 0 {
			t.Fatalf("throughput %v", bps)
		}
	}
}

func TestProbesDeterministicBySeed(t *testing.T) {
	n1, _ := NewNetwork(Testbed(), 7)
	n2, _ := NewNetwork(Testbed(), 7)
	for i := 0; i < 10; i++ {
		a, _ := n1.ProbeLatency("sdsc", "utk")
		b, _ := n2.ProbeLatency("sdsc", "utk")
		if a != b {
			t.Fatalf("same seed diverged at probe %d: %v vs %v", i, a, b)
		}
	}
	n3, _ := NewNetwork(Testbed(), 8)
	diverged := false
	for i := 0; i < 10; i++ {
		a, _ := n1.ProbeLatency("sdsc", "utk")
		c, _ := n3.ProbeLatency("sdsc", "utk")
		if a != c {
			diverged = true
		}
	}
	if !diverged {
		t.Error("different seeds produced identical probe streams")
	}
}

func TestUnknownSiteErrors(t *testing.T) {
	n := testNetwork(t)
	if _, err := n.ProbeLatency("sdsc", "nowhere"); err == nil {
		t.Error("unknown destination accepted")
	}
	if _, err := n.ProbeThroughput("nowhere", "sdsc"); err == nil {
		t.Error("unknown source accepted")
	}
}

func TestTransferTimeGrowsWithPayload(t *testing.T) {
	n := testNetwork(t)
	small, err := n.TransferTime("utah", "utk", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	large, err := n.TransferTime("utah", "utk", 10<<30)
	if err != nil {
		t.Fatal(err)
	}
	if large <= small {
		t.Errorf("10GiB transfer %v not above 1MiB transfer %v", large, small)
	}
}

func TestMeasureFullMesh(t *testing.T) {
	n := testNetwork(t)
	rep, err := n.Measure(5)
	if err != nil {
		t.Fatal(err)
	}
	wantPairs := 8 * 7
	if len(rep.Pairs) != wantPairs {
		t.Fatalf("measured %d pairs, want %d", len(rep.Pairs), wantPairs)
	}
	for k, ps := range rep.Pairs {
		if ps.Probes != 5 {
			t.Errorf("%s: %d probes", k, ps.Probes)
		}
		if ps.MinRTT > ps.MeanRTT || ps.MeanRTT > ps.MaxRTT {
			t.Errorf("%s: RTT ordering broken: %v/%v/%v", k, ps.MinRTT, ps.MeanRTT, ps.MaxRTT)
		}
		if ps.MinBps > ps.MeanBps {
			t.Errorf("%s: Bps ordering broken", k)
		}
	}
}

func TestMeasureValidation(t *testing.T) {
	n := testNetwork(t)
	if _, err := n.Measure(0); err == nil {
		t.Error("zero probes accepted")
	}
}

func TestConstraints(t *testing.T) {
	n := testNetwork(t)
	rep, err := n.Measure(3)
	if err != nil {
		t.Fatal(err)
	}
	// Impossible requirements flag everything.
	all := rep.Constraints(time.Microsecond, 1e15)
	if len(all) != 2*8*7 {
		t.Errorf("impossible requirements flagged %d, want %d", len(all), 2*8*7)
	}
	// Trivial requirements flag nothing.
	if c := rep.Constraints(time.Hour, 1); len(c) != 0 {
		t.Errorf("trivial requirements flagged %d", len(c))
	}
	// The 10 Gbps cloud site must appear when requiring 20 Gbps.
	cons := rep.Constraints(0, 20e9)
	foundCloud := false
	for _, c := range cons {
		if strings.Contains(c.Pair, "cloud") {
			foundCloud = true
		}
	}
	if !foundCloud {
		t.Error("cloud uplink constraint not detected")
	}
}

func TestMatricesRender(t *testing.T) {
	n := testNetwork(t)
	rep, _ := n.Measure(2)
	lat := rep.LatencyMatrix()
	thr := rep.ThroughputMatrix()
	for _, site := range rep.Sites {
		if !strings.Contains(lat, site) {
			t.Errorf("latency matrix missing %s", site)
		}
		if !strings.Contains(thr, site) {
			t.Errorf("throughput matrix missing %s", site)
		}
	}
	if len(strings.Split(strings.TrimSpace(lat), "\n")) != 10 { // title + header + 8 rows
		t.Errorf("latency matrix:\n%s", lat)
	}
}

func TestHaversineKnownDistance(t *testing.T) {
	// SLC to San Diego is ~990 km.
	var slc, sd Site
	for _, s := range Testbed() {
		if s.Name == "utah" {
			slc = s
		}
		if s.Name == "sdsc" {
			sd = s
		}
	}
	d := haversineKm(slc, sd)
	if d < 900 || d > 1100 {
		t.Errorf("SLC-SD distance %v km, want ~990", d)
	}
}

func BenchmarkMeasure8Sites(b *testing.B) {
	n, _ := NewNetwork(Testbed(), 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := n.Measure(10); err != nil {
			b.Fatal(err)
		}
	}
}
