package shard

import (
	"fmt"
	"testing"
)

// ringKeys synthesises n block-shaped keys.
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("datasets/tennessee/blocks/v/0/%06d", i)
	}
	return keys
}

func ringOf(nodes ...string) *Ring {
	r := NewRing(0)
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

// TestRingPlacementDeterministic: placement is a pure function of the
// membership set — insertion order must not matter, and rebuilding the
// ring must reproduce it. Independent routers rely on this to agree
// without coordination.
func TestRingPlacementDeterministic(t *testing.T) {
	a := ringOf("n0", "n1", "n2", "n3")
	b := ringOf("n3", "n1", "n0", "n2")
	for _, key := range ringKeys(2000) {
		ra, rb := a.Replicas(key, 2), b.Replicas(key, 2)
		if len(ra) != 2 || len(rb) != 2 || ra[0] != rb[0] || ra[1] != rb[1] {
			t.Fatalf("placement differs for %q: %v vs %v", key, ra, rb)
		}
	}
}

// TestRingReplicasDistinct: the replica set never repeats a node and
// clamps to the membership size.
func TestRingReplicasDistinct(t *testing.T) {
	r := ringOf("n0", "n1", "n2")
	for _, key := range ringKeys(500) {
		reps := r.Replicas(key, 5)
		if len(reps) != 3 {
			t.Fatalf("Replicas(%q, 5) on a 3-node ring returned %v", key, reps)
		}
		seen := map[string]bool{}
		for _, n := range reps {
			if seen[n] {
				t.Fatalf("duplicate node in replica set %v for %q", reps, key)
			}
			seen[n] = true
		}
	}
	if got := ringOf().Replicas("k", 2); got != nil {
		t.Fatalf("empty ring returned replicas %v", got)
	}
}

// TestRingDistributionBalance: with DefaultVirtualNodes, primary load
// per node stays within a reasonable factor of uniform.
func TestRingDistributionBalance(t *testing.T) {
	r := ringOf("n0", "n1", "n2", "n3")
	spread := r.Spread(ringKeys(20000))
	want := 20000 / 4
	for node, got := range spread {
		if got < want/2 || got > want*2 {
			t.Errorf("node %s owns %d of 20000 keys; want within [%d, %d] of uniform %d",
				node, got, want/2, want*2, want)
		}
	}
}

// TestRingRebalanceAddMovesOnlyFraction is the membership-change pin:
// growing N=4 to N=5 must move only ~K/5 primaries, and every moved key
// must land on the new node — existing nodes never trade keys among
// themselves (the consistent-hashing stability guarantee).
func TestRingRebalanceAddMovesOnlyFraction(t *testing.T) {
	const K = 10000
	keys := ringKeys(K)
	r := ringOf("n0", "n1", "n2", "n3")
	before := make(map[string]string, K)
	for _, k := range keys {
		before[k] = r.Primary(k)
	}

	r.Add("n4")
	moved := 0
	for _, k := range keys {
		now := r.Primary(k)
		if now == before[k] {
			continue
		}
		moved++
		if now != "n4" {
			t.Fatalf("key %q moved %s -> %s, but only the new node n4 may gain keys", k, before[k], now)
		}
	}
	ideal := K / 5
	if moved < ideal/2 || moved > ideal*2 {
		t.Fatalf("adding 1 node to 4 moved %d of %d keys; want ~K/N = %d (accepting [%d, %d])",
			moved, K, ideal, ideal/2, ideal*2)
	}
	t.Logf("add n4: moved %d/%d primaries (ideal %d)", moved, K, ideal)
}

// TestRingRebalanceRemoveMovesOnlyVictimKeys: removing a node reassigns
// exactly that node's keys; everyone else's placement is untouched.
func TestRingRebalanceRemoveMovesOnlyVictimKeys(t *testing.T) {
	const K = 10000
	keys := ringKeys(K)
	r := ringOf("n0", "n1", "n2", "n3")
	before := make(map[string]string, K)
	for _, k := range keys {
		before[k] = r.Primary(k)
	}

	r.Remove("n2")
	moved := 0
	for _, k := range keys {
		now := r.Primary(k)
		if before[k] == "n2" {
			moved++
			if now == "n2" {
				t.Fatalf("key %q still maps to removed node n2", k)
			}
			continue
		}
		if now != before[k] {
			t.Fatalf("key %q moved %s -> %s though its owner survived", k, before[k], now)
		}
	}
	if moved == 0 {
		t.Fatal("removing a node moved no keys; distribution test should have caught an empty node")
	}
	t.Logf("remove n2: reassigned %d/%d primaries", moved, K)
}

// TestRingAddRemoveIdempotent: double add/remove are no-ops.
func TestRingAddRemoveIdempotent(t *testing.T) {
	r := ringOf("n0", "n1")
	r.Add("n0")
	if r.Len() != 2 || len(r.vnodes) != 2*r.VirtualNodes() {
		t.Fatalf("double Add changed the ring: %s", r)
	}
	r.Remove("missing")
	if r.Len() != 2 {
		t.Fatalf("removing an absent node changed the ring: %s", r)
	}
	r.Remove("n0")
	r.Remove("n0")
	if r.Len() != 1 || len(r.vnodes) != r.VirtualNodes() {
		t.Fatalf("double Remove corrupted the ring: %s", r)
	}
}
