package shard_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nsdfgo/internal/shard"
	"nsdfgo/internal/storage"
	"nsdfgo/internal/telemetry"
)

// This file is the sharding acceptance harness behind `make bench-shard`
// and BENCH_shard.json. It proves the two perf claims of the sharded
// tier: (1) aggregate cold-read throughput scales with node count,
// because each simulated node owns an independent link; (2) hedged
// reads cut p99 latency under a heavy-tailed storage.Conditioned
// profile while costing <5% extra backend Gets. A third section pins
// the failure semantics: reads ride through a node loss on replicas.

// linkNode simulates one storage node with a capacity-constrained link:
// transfers serialize on a mutex and sleep RTT plus bytes/bandwidth, so
// a node's aggregate throughput is bounded no matter how many clients
// pile on — the property that makes node count the scaling knob.
// Delays arm only after setup so dataset writes stay fast.
type linkNode struct {
	inner *storage.MemStore
	rtt   time.Duration
	bps   float64

	mu    sync.Mutex
	armed atomic.Bool
	gets  atomic.Int64
}

func (n *linkNode) transfer(ctx context.Context, bytes int) error {
	if !n.armed.Load() {
		return ctx.Err()
	}
	d := n.rtt + time.Duration(float64(bytes)/n.bps*float64(time.Second))
	n.mu.Lock()
	defer n.mu.Unlock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (n *linkNode) Get(ctx context.Context, key string) ([]byte, error) {
	n.gets.Add(1)
	data, err := n.inner.Get(ctx, key)
	if err != nil {
		return nil, err
	}
	if err := n.transfer(ctx, len(data)); err != nil {
		return nil, err
	}
	return data, nil
}

func (n *linkNode) Put(ctx context.Context, key string, data []byte) error {
	if err := n.transfer(ctx, len(data)); err != nil {
		return err
	}
	return n.inner.Put(ctx, key, data)
}

func (n *linkNode) Delete(ctx context.Context, key string) error {
	return n.inner.Delete(ctx, key)
}

func (n *linkNode) Stat(ctx context.Context, key string) (storage.ObjectInfo, error) {
	return n.inner.Stat(ctx, key)
}

func (n *linkNode) List(ctx context.Context, prefix string) ([]storage.ObjectInfo, error) {
	return n.inner.List(ctx, prefix)
}

// countingStore counts Gets through to an inner store, for measuring
// hedging's extra backend load.
type countingStore struct {
	storage.Store
	gets atomic.Int64
}

func (c *countingStore) Get(ctx context.Context, key string) ([]byte, error) {
	c.gets.Add(1)
	return c.Store.Get(ctx, key)
}

func benchKey(i int) string { return fmt.Sprintf("blocks/v/0/%06d", i) }

// runScaling measures aggregate cold-read throughput over nodeCount
// link-limited nodes.
func runScaling(t *testing.T, nodeCount, keys, objectBytes, readers int) (mbPerS float64, elapsed time.Duration) {
	t.Helper()
	links := make([]*linkNode, nodeCount)
	nodes := make([]shard.Node, nodeCount)
	for i := range nodes {
		links[i] = &linkNode{inner: storage.NewMemStore(), rtt: 100 * time.Microsecond, bps: 100 << 20}
		nodes[i] = shard.Node{Name: fmt.Sprintf("n%d", i), Store: links[i]}
	}
	replicas := 2
	if replicas > nodeCount {
		replicas = nodeCount
	}
	r, err := shard.NewRouter(nodes, shard.Options{Replicas: replicas})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	payload := make([]byte, objectBytes)
	for i := 0; i < keys; i++ {
		if err := r.Put(ctx, benchKey(i), payload); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range links {
		l.armed.Store(true)
	}

	var start, wg sync.WaitGroup
	start.Add(1)
	wg.Add(readers)
	perReader := keys / readers
	for w := 0; w < readers; w++ {
		go func(w int) {
			defer wg.Done()
			start.Wait()
			for i := w * perReader; i < (w+1)*perReader; i++ {
				if _, err := r.Get(ctx, benchKey(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	t0 := time.Now()
	start.Done()
	wg.Wait()
	elapsed = time.Since(t0)
	totalMB := float64(keys*objectBytes) / (1 << 20)
	return totalMB / elapsed.Seconds(), elapsed
}

// tailCluster builds nodeCount heavy-tail Conditioned nodes over shared
// counting wrappers, pre-populated with keys.
func tailCluster(t *testing.T, nodeCount, keys, objectBytes int, hedgeAfter time.Duration, profile storage.NetworkProfile) (*shard.Router, []*countingStore, *telemetry.Registry) {
	t.Helper()
	counters := make([]*countingStore, nodeCount)
	nodes := make([]shard.Node, nodeCount)
	for i := range nodes {
		counters[i] = &countingStore{Store: storage.NewMemStore()}
		cond := storage.NewConditioned(counters[i], profile, int64(1000+i))
		nodes[i] = shard.Node{Name: fmt.Sprintf("n%d", i), Store: cond}
	}
	r, err := shard.NewRouter(nodes, shard.Options{Replicas: 2, HedgeAfter: hedgeAfter})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	r.Instrument(reg)
	ctx := context.Background()
	payload := make([]byte, objectBytes)
	for i := 0; i < keys; i++ {
		if err := r.Put(ctx, benchKey(i), payload); err != nil {
			t.Fatal(err)
		}
	}
	// Reset counters so the measured phase sees only reads.
	for _, c := range counters {
		c.gets.Store(0)
	}
	return r, counters, reg
}

// measureLatencies runs n sequential Gets of random keys and returns
// the sorted per-op latencies plus total backend Gets.
func measureLatencies(t *testing.T, r *shard.Router, counters []*countingStore, keys, n int) ([]time.Duration, int64) {
	t.Helper()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	lats := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		key := benchKey(rng.Intn(keys))
		t0 := time.Now()
		if _, err := r.Get(ctx, key); err != nil {
			t.Fatal(err)
		}
		lats[i] = time.Since(t0)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var gets int64
	for _, c := range counters {
		gets += c.gets.Load()
	}
	return lats, gets
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func TestBenchShardEmit(t *testing.T) {
	iters, _ := strconv.Atoi(os.Getenv("NSDF_BENCH_SHARD_ITERS"))
	if iters <= 0 {
		t.Skip("set NSDF_BENCH_SHARD_ITERS>=1 to run the shard benchmark emitter")
	}
	smoke := iters == 1
	outPath := os.Getenv("NSDF_BENCH_SHARD_OUT")
	if outPath == "" {
		outPath = t.TempDir() + "/BENCH_shard.json"
	}
	prev := runtime.GOMAXPROCS(4) // results must not depend on the host's core count
	defer runtime.GOMAXPROCS(prev)

	// --- Throughput scaling: N=1/2/4 nodes, each a 100 MiB/s link. ---
	scaleKeys, objectBytes, readers := 256, 64<<10, 16
	if smoke {
		scaleKeys = 32
	}
	type scalePoint struct {
		Nodes      int     `json:"nodes"`
		Replicas   int     `json:"replicas"`
		MBPerS     float64 `json:"aggregate_mb_per_s"`
		ElapsedMs  float64 `json:"elapsed_ms"`
		SpeedupVs1 float64 `json:"speedup_vs_1_node"`
	}
	var points []scalePoint
	scaleIters := iters
	if scaleIters > 3 {
		scaleIters = 3 // best-of-3 settles; more just burns wall clock on the N=1 run
	}
	for _, n := range []int{1, 2, 4} {
		var best float64
		var bestElapsed time.Duration
		for it := 0; it < scaleIters; it++ {
			mbps, elapsed := runScaling(t, n, scaleKeys, objectBytes, readers)
			if mbps > best {
				best, bestElapsed = mbps, elapsed
			}
		}
		replicas := 2
		if replicas > n {
			replicas = n
		}
		points = append(points, scalePoint{Nodes: n, Replicas: replicas, MBPerS: best, ElapsedMs: float64(bestElapsed.Nanoseconds()) / 1e6})
	}
	for i := range points {
		points[i].SpeedupVs1 = points[i].MBPerS / points[0].MBPerS
	}
	scaling4x := points[len(points)-1].SpeedupVs1

	// --- Hedged vs unhedged p99 under a heavy-tail Conditioned profile.
	// The profile is ProfileHeavyTail scaled ~4x down: 1ms RTT, 2% chance
	// of a 10ms spike. The scale is deliberately no finer — this host's
	// timers have a ~1ms granularity floor, so sub-millisecond RTTs would
	// blur the hedge threshold. The hedge fires at 3ms: above every
	// normal response (~1.3ms wall), below every spike (~11ms). ---
	tailProfile := storage.NetworkProfile{
		RTT:          1 * time.Millisecond,
		BandwidthBps: 1 << 30,
		Jitter:       200 * time.Microsecond,
		TailProb:     0.02,
		TailSpike:    10 * time.Millisecond,
	}
	hedgeAfter := 3 * time.Millisecond
	tailKeys := 128
	gets := 500 * iters
	if smoke {
		gets = 100
	}

	unhedgedRouter, unhedgedCounters, _ := tailCluster(t, 4, tailKeys, 16<<10, 0, tailProfile)
	unhedgedLats, unhedgedGets := measureLatencies(t, unhedgedRouter, unhedgedCounters, tailKeys, gets)

	hedgedRouter, hedgedCounters, hedgedReg := tailCluster(t, 4, tailKeys, 16<<10, hedgeAfter, tailProfile)
	hedgedLats, hedgedGets := measureLatencies(t, hedgedRouter, hedgedCounters, tailKeys, gets)

	up50, up99 := quantile(unhedgedLats, 0.50), quantile(unhedgedLats, 0.99)
	hp50, hp99 := quantile(hedgedLats, 0.50), quantile(hedgedLats, 0.99)
	p99Cut := 1 - float64(hp99)/float64(up99)
	extraGets := float64(hedgedGets-int64(gets)) / float64(gets)
	hedgesFired := hedgedReg.Counter("nsdf_shard_hedges_fired_total").Value()
	hedgesWon := hedgedReg.Counter("nsdf_shard_hedges_won_total").Value()

	// --- Node loss: kill one of 4 nodes, read every key; replicas must
	// cover all of them. Reuses the hedged cluster. ---
	r, flips, reg := newTestCluster(t, 4, shard.Options{Replicas: 2})
	ctx := context.Background()
	for i := 0; i < tailKeys; i++ {
		if err := r.Put(ctx, benchKey(i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	flips[2].down.Store(true)
	lossOK := true
	for i := 0; i < tailKeys; i++ {
		if _, err := r.Get(ctx, benchKey(i)); err != nil {
			lossOK = false
			t.Errorf("read of %s failed with one node down: %v", benchKey(i), err)
		}
	}
	failovers := reg.Counter("nsdf_shard_replica_failovers_total").Value()

	doc := struct {
		Description string `json:"description"`
		GOMAXPROCS  int    `json:"gomaxprocs"`
		Iters       int    `json:"iterations"`
		Scaling     struct {
			ObjectKiB int          `json:"object_kib"`
			Keys      int          `json:"keys"`
			Readers   int          `json:"readers"`
			NodeLink  string       `json:"node_link"`
			Points    []scalePoint `json:"points"`
		} `json:"scaling"`
		Hedging struct {
			Profile         string  `json:"profile"`
			HedgeAfterUs    float64 `json:"hedge_after_us"`
			Gets            int     `json:"gets"`
			UnhedgedP50Ms   float64 `json:"unhedged_p50_ms"`
			UnhedgedP99Ms   float64 `json:"unhedged_p99_ms"`
			UnhedgedBackend int64   `json:"unhedged_backend_gets"`
			HedgedP50Ms     float64 `json:"hedged_p50_ms"`
			HedgedP99Ms     float64 `json:"hedged_p99_ms"`
			HedgedBackend   int64   `json:"hedged_backend_gets"`
			HedgesFired     int64   `json:"hedges_fired"`
			HedgesWon       int64   `json:"hedges_won"`
			P99CutPct       float64 `json:"p99_cut_pct"`
			ExtraBackendPct float64 `json:"extra_backend_gets_pct"`
		} `json:"hedging"`
		NodeLoss struct {
			Nodes      int   `json:"nodes"`
			Killed     int   `json:"killed"`
			Keys       int   `json:"keys"`
			AllReadsOK bool  `json:"all_reads_succeeded"`
			Failovers  int64 `json:"replica_failovers"`
		} `json:"node_loss"`
	}{
		Description: "Sharded block-serving tier: cold-read throughput scaling across consistent-hash nodes (R=2), hedged-read p99 vs unhedged under a heavy-tail Conditioned profile, and node-loss failover. Regenerate with `make bench-shard`.",
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Iters:       iters,
	}
	doc.Scaling.ObjectKiB = objectBytes >> 10
	doc.Scaling.Keys = scaleKeys
	doc.Scaling.Readers = readers
	doc.Scaling.NodeLink = "100 MiB/s serialized link, 100us RTT per node"
	doc.Scaling.Points = points
	doc.Hedging.Profile = "RTT 1ms, jitter 200us, 2% x 10ms tail spikes, 1 GiB/s (ProfileHeavyTail scaled 4x down)"
	doc.Hedging.HedgeAfterUs = float64(hedgeAfter.Microseconds())
	doc.Hedging.Gets = gets
	doc.Hedging.UnhedgedP50Ms = float64(up50.Nanoseconds()) / 1e6
	doc.Hedging.UnhedgedP99Ms = float64(up99.Nanoseconds()) / 1e6
	doc.Hedging.UnhedgedBackend = unhedgedGets
	doc.Hedging.HedgedP50Ms = float64(hp50.Nanoseconds()) / 1e6
	doc.Hedging.HedgedP99Ms = float64(hp99.Nanoseconds()) / 1e6
	doc.Hedging.HedgedBackend = hedgedGets
	doc.Hedging.HedgesFired = hedgesFired
	doc.Hedging.HedgesWon = hedgesWon
	doc.Hedging.P99CutPct = 100 * p99Cut
	doc.Hedging.ExtraBackendPct = 100 * extraGets
	doc.NodeLoss.Nodes = 4
	doc.NodeLoss.Killed = 1
	doc.NodeLoss.Keys = tailKeys
	doc.NodeLoss.AllReadsOK = lossOK
	doc.NodeLoss.Failovers = failovers

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("scaling: N=1 %.1f MB/s, N=2 %.1fx, N=4 %.1fx", points[0].MBPerS, points[1].SpeedupVs1, scaling4x)
	t.Logf("hedging: p99 %.2fms -> %.2fms (%.1f%% cut), %d hedges fired / %d won, %.2f%% extra backend gets",
		doc.Hedging.UnhedgedP99Ms, doc.Hedging.HedgedP99Ms, doc.Hedging.P99CutPct, hedgesFired, hedgesWon, doc.Hedging.ExtraBackendPct)
	t.Logf("wrote %s", outPath)

	// Acceptance gates (skipped in smoke mode, where shapes are truncated).
	if !smoke {
		if scaling4x < 2.0 {
			t.Errorf("N=4 aggregate throughput is %.2fx of N=1, want >= 2x", scaling4x)
		}
		if p99Cut < 0.30 {
			t.Errorf("hedging cut p99 by %.1f%%, want >= 30%%", 100*p99Cut)
		}
		if extraGets >= 0.05 {
			t.Errorf("hedging cost %.2f%% extra backend gets, want < 5%%", 100*extraGets)
		}
		if !lossOK {
			t.Error("reads did not ride through a node loss")
		}
	}
}
