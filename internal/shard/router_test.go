package shard_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nsdfgo/internal/idx"
	"nsdfgo/internal/raster"
	"nsdfgo/internal/shard"
	"nsdfgo/internal/storage"
	"nsdfgo/internal/telemetry"
)

// flipStore is a storage.Store whose node can be killed and revived
// atomically, for failover and stress tests.
type flipStore struct {
	inner storage.Store
	down  atomic.Bool
}

var errNodeDown = errors.New("shard_test: node down")

func (f *flipStore) check() error {
	if f.down.Load() {
		return errNodeDown
	}
	return nil
}

func (f *flipStore) Put(ctx context.Context, key string, data []byte) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.Put(ctx, key, data)
}

func (f *flipStore) Get(ctx context.Context, key string) ([]byte, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	return f.inner.Get(ctx, key)
}

func (f *flipStore) Delete(ctx context.Context, key string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.Delete(ctx, key)
}

func (f *flipStore) Stat(ctx context.Context, key string) (storage.ObjectInfo, error) {
	if err := f.check(); err != nil {
		return storage.ObjectInfo{}, err
	}
	return f.inner.Stat(ctx, key)
}

func (f *flipStore) List(ctx context.Context, prefix string) ([]storage.ObjectInfo, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	return f.inner.List(ctx, prefix)
}

// slowStore delays every Get by a fixed amount (honouring ctx), for
// hedging tests.
type slowStore struct {
	storage.Store
	delay time.Duration
	gets  atomic.Int64
}

func (s *slowStore) Get(ctx context.Context, key string) ([]byte, error) {
	s.gets.Add(1)
	t := time.NewTimer(s.delay)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-t.C:
	}
	return s.Store.Get(ctx, key)
}

// newTestCluster builds n flipStore-backed nodes and a router over them.
func newTestCluster(t *testing.T, n int, opts shard.Options) (*shard.Router, []*flipStore, *telemetry.Registry) {
	t.Helper()
	flips := make([]*flipStore, n)
	nodes := make([]shard.Node, n)
	for i := range nodes {
		flips[i] = &flipStore{inner: storage.NewMemStore()}
		nodes[i] = shard.Node{Name: fmt.Sprintf("n%d", i), Store: flips[i]}
	}
	r, err := shard.NewRouter(nodes, opts)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	r.Instrument(reg)
	return r, flips, reg
}

func counter(reg *telemetry.Registry, name string, labels ...string) int64 {
	return reg.Counter(name, labels...).Value()
}

func TestRouterRoundTripAndReplication(t *testing.T) {
	r, flips, _ := newTestCluster(t, 4, shard.Options{Replicas: 2})
	ctx := context.Background()
	const K = 100
	for i := 0; i < K; i++ {
		key := fmt.Sprintf("blocks/%03d", i)
		if err := r.Put(ctx, key, []byte(key)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < K; i++ {
		key := fmt.Sprintf("blocks/%03d", i)
		data, err := r.Get(ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != key {
			t.Fatalf("Get(%q) = %q", key, data)
		}
		// Exactly R nodes hold each key.
		holders := 0
		for _, f := range flips {
			if _, err := f.inner.Stat(ctx, key); err == nil {
				holders++
			}
		}
		if holders != 2 {
			t.Fatalf("key %q is on %d nodes, want R=2", key, holders)
		}
	}
	// The spread should use all nodes.
	listed, err := r.List(ctx, "blocks/")
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != K {
		t.Fatalf("List merged to %d keys, want %d", len(listed), K)
	}
	for _, f := range flips {
		infos, err := f.inner.List(ctx, "blocks/")
		if err != nil {
			t.Fatal(err)
		}
		if len(infos) == 0 {
			t.Fatal("a node owns no keys; ring distribution is broken")
		}
	}
}

func TestRouterMissingKey(t *testing.T) {
	r, _, reg := newTestCluster(t, 3, shard.Options{Replicas: 2})
	ctx := context.Background()
	if _, err := r.Get(ctx, "absent"); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("Get(absent) = %v, want ErrNotExist", err)
	}
	if _, err := r.Stat(ctx, "absent"); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("Stat(absent) = %v, want ErrNotExist", err)
	}
	if got := counter(reg, "nsdf_shard_replica_failovers_total"); got != 0 {
		t.Fatalf("a clean miss booked %d failovers, want 0", got)
	}
}

// TestRouterFailoverOnNodeLoss is the node-loss pin: kill a key's
// primary, and the read must come back from the replica with
// nsdf_shard_replica_failovers_total incrementing and the node_up gauge
// dropping to 0.
func TestRouterFailoverOnNodeLoss(t *testing.T) {
	r, flips, reg := newTestCluster(t, 4, shard.Options{Replicas: 2})
	ctx := context.Background()
	const K = 40
	for i := 0; i < K; i++ {
		key := fmt.Sprintf("blocks/%03d", i)
		if err := r.Put(ctx, key, []byte(key)); err != nil {
			t.Fatal(err)
		}
	}
	// Kill node n1 and read everything back.
	flips[1].down.Store(true)
	before := counter(reg, "nsdf_shard_replica_failovers_total")
	primaries := 0
	for i := 0; i < K; i++ {
		key := fmt.Sprintf("blocks/%03d", i)
		if r.Ring().Primary(key) == "n1" {
			primaries++
		}
		data, err := r.Get(ctx, key)
		if err != nil {
			t.Fatalf("Get(%q) with n1 down: %v", key, err)
		}
		if string(data) != key {
			t.Fatalf("Get(%q) = %q", key, data)
		}
	}
	if primaries == 0 {
		t.Fatal("no key had n1 as primary; test exercises nothing")
	}
	failovers := counter(reg, "nsdf_shard_replica_failovers_total") - before
	if failovers < int64(primaries) {
		t.Fatalf("%d keys had the dead node as primary but only %d failovers were counted", primaries, failovers)
	}
	if up := reg.Gauge("nsdf_shard_node_up", "node", "n1").Value(); up != 0 {
		t.Fatalf("nsdf_shard_node_up{node=n1} = %v after failures, want 0", up)
	}
	if up := reg.Gauge("nsdf_shard_node_up", "node", "n0").Value(); up != 1 {
		t.Fatalf("nsdf_shard_node_up{node=n0} = %v, want 1", up)
	}
}

// TestRouterDegradedWrite: a write with a dead replica succeeds on the
// survivors and books the loss in the failover counter; once every
// replica is dead it errors.
func TestRouterDegradedWrite(t *testing.T) {
	r, flips, reg := newTestCluster(t, 2, shard.Options{Replicas: 2})
	ctx := context.Background()
	flips[1].down.Store(true)
	before := counter(reg, "nsdf_shard_replica_failovers_total")
	if err := r.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("degraded Put: %v", err)
	}
	if got := counter(reg, "nsdf_shard_replica_failovers_total") - before; got != 1 {
		t.Fatalf("degraded Put booked %d failovers, want 1", got)
	}
	if data, err := r.Get(ctx, "k"); err != nil || string(data) != "v" {
		t.Fatalf("Get after degraded Put = %q, %v", data, err)
	}
	flips[0].down.Store(true)
	if err := r.Put(ctx, "k2", []byte("v")); err == nil {
		t.Fatal("Put with every replica dead succeeded")
	}
	if _, err := r.Get(ctx, "k"); err == nil {
		t.Fatal("Get with every replica dead succeeded")
	}
}

// TestRouterHedgedRead: a slow primary is beaten by the hedge fired at
// the replica, the caller sees the fast response, and the
// hedges_fired/hedges_won counters tick.
func TestRouterHedgedRead(t *testing.T) {
	mem := storage.NewMemStore()
	ctx := context.Background()
	if err := mem.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	slow := &slowStore{Store: mem, delay: 300 * time.Millisecond}
	fast := &slowStore{Store: mem, delay: 0}
	// Both nodes share the same MemStore, so whichever the ring picks as
	// primary, the other replica can serve the hedge.
	r, err := shard.NewRouter([]shard.Node{{Name: "slow", Store: slow}, {Name: "fast", Store: fast}},
		shard.Options{Replicas: 2, HedgeAfter: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	r.Instrument(reg)

	// Find a key whose primary is the slow node so the hedge is what
	// saves the read.
	key := "k"
	for i := 0; ; i++ {
		key = fmt.Sprintf("k%d", i)
		if r.Ring().Primary(key) == "slow" {
			break
		}
	}
	if err := mem.Put(ctx, key, []byte("v")); err != nil {
		t.Fatal(err)
	}

	t0 := time.Now()
	data, err := r.Get(ctx, key)
	elapsed := time.Since(t0)
	if err != nil || string(data) != "v" {
		t.Fatalf("hedged Get = %q, %v", data, err)
	}
	if elapsed >= 300*time.Millisecond {
		t.Fatalf("hedged Get took %v; the slow primary was not beaten", elapsed)
	}
	if got := counter(reg, "nsdf_shard_hedges_fired_total"); got != 1 {
		t.Fatalf("hedges_fired = %d, want 1", got)
	}
	if got := counter(reg, "nsdf_shard_hedges_won_total"); got != 1 {
		t.Fatalf("hedges_won = %d, want 1", got)
	}
	if got := counter(reg, "nsdf_shard_replica_failovers_total"); got != 0 {
		t.Fatalf("a won hedge booked %d failovers, want 0", got)
	}
}

// TestRouterHedgeNotFiredWhenFast: a fast primary answers before the
// hedge delay, so no extra backend load is generated.
func TestRouterHedgeNotFiredWhenFast(t *testing.T) {
	mem := storage.NewMemStore()
	ctx := context.Background()
	a := &slowStore{Store: mem, delay: 0}
	b := &slowStore{Store: mem, delay: 0}
	r, err := shard.NewRouter([]shard.Node{{Name: "a", Store: a}, {Name: "b", Store: b}},
		shard.Options{Replicas: 2, HedgeAfter: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	r.Instrument(reg)
	if err := mem.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := r.Get(ctx, "k"); err != nil {
			t.Fatal(err)
		}
	}
	if fired := counter(reg, "nsdf_shard_hedges_fired_total"); fired != 0 {
		t.Fatalf("fast reads fired %d hedges, want 0", fired)
	}
	if total := a.gets.Load() + b.gets.Load(); total != 20 {
		t.Fatalf("20 routed Gets hit the backends %d times, want exactly 20", total)
	}
}

// TestRouterGetCancellation: a cancelled caller aborts promptly even
// with a slow node, returning ctx.Err.
func TestRouterGetCancellation(t *testing.T) {
	mem := storage.NewMemStore()
	if err := mem.Put(context.Background(), "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	slow := &slowStore{Store: mem, delay: 5 * time.Second}
	r, err := shard.NewRouter([]shard.Node{{Name: "a", Store: slow}}, shard.Options{Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	if _, err := r.Get(ctx, "k"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled Get = %v, want DeadlineExceeded", err)
	}
	if time.Since(t0) > time.Second {
		t.Fatalf("cancelled Get took %v; did not abort promptly", time.Since(t0))
	}
}

// TestRouterListDegradation: listings survive up to R-1 node losses
// (replication keeps them complete) and refuse to return silently
// partial results beyond that.
func TestRouterListDegradation(t *testing.T) {
	r, flips, _ := newTestCluster(t, 4, shard.Options{Replicas: 2})
	ctx := context.Background()
	const K = 50
	for i := 0; i < K; i++ {
		if err := r.Put(ctx, fmt.Sprintf("blocks/%03d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	flips[2].down.Store(true)
	listed, err := r.List(ctx, "blocks/")
	if err != nil {
		t.Fatalf("List with 1 of 4 nodes down: %v", err)
	}
	if len(listed) != K {
		t.Fatalf("List with a dead node returned %d keys, want the full %d (replicas cover the loss)", len(listed), K)
	}
	flips[3].down.Store(true)
	if _, err := r.List(ctx, "blocks/"); err == nil {
		t.Fatal("List with R nodes down succeeded; it can silently lose keys and must error")
	}
}

// TestRouterDeleteReplicas: delete removes the key from every replica.
func TestRouterDeleteReplicas(t *testing.T) {
	r, flips, _ := newTestCluster(t, 3, shard.Options{Replicas: 2})
	ctx := context.Background()
	if err := r.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	for i, f := range flips {
		if _, err := f.inner.Stat(ctx, "k"); err == nil {
			t.Fatalf("node %d still holds deleted key", i)
		}
	}
	if _, err := r.Get(ctx, "k"); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("Get after Delete = %v, want ErrNotExist", err)
	}
}

// TestRouterPartialWriteProbe: a key written while one replica was down
// must still be readable when that replica comes back (primary misses,
// replica probe finds it).
func TestRouterPartialWriteProbe(t *testing.T) {
	r, flips, _ := newTestCluster(t, 2, shard.Options{Replicas: 2})
	ctx := context.Background()
	key := "k"
	primary := r.Ring().Primary(key)
	// Kill the primary during the write, then revive it: the key now
	// lives only on the secondary.
	for i, f := range flips {
		if fmt.Sprintf("n%d", i) == primary {
			f.down.Store(true)
		}
	}
	if err := r.Put(ctx, key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	for _, f := range flips {
		f.down.Store(false)
	}
	data, err := r.Get(ctx, key)
	if err != nil || string(data) != "v" {
		t.Fatalf("Get of partially-written key = %q, %v", data, err)
	}
}

// TestRouterStress hammers the router from concurrent readers while a
// node flaps and writers refresh keys — run under -race by `make race`,
// this is the concurrency pin for the fan-out/hedge/failover paths.
func TestRouterStress(t *testing.T) {
	r, flips, reg := newTestCluster(t, 4, shard.Options{Replicas: 2, HedgeAfter: 200 * time.Microsecond})
	ctx := context.Background()
	const K = 64
	key := func(i int) string { return fmt.Sprintf("blocks/%03d", i%K) }
	for i := 0; i < K; i++ {
		if err := r.Put(ctx, key(i), []byte(key(i))); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var flapper sync.WaitGroup
	flapper.Add(1)
	go func() {
		defer flapper.Done()
		for !stop.Load() {
			flips[1].down.Store(true)
			time.Sleep(500 * time.Microsecond)
			flips[1].down.Store(false)
			time.Sleep(500 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 300; i++ {
				k := key(rng.Intn(K))
				if w < 2 && i%10 == 9 { // two writers refresh keys
					if err := r.Put(ctx, k, []byte(k)); err != nil {
						errCh <- fmt.Errorf("put %s: %w", k, err)
						return
					}
					continue
				}
				data, err := r.Get(ctx, k)
				if err != nil {
					errCh <- fmt.Errorf("get %s: %w", k, err)
					return
				}
				if string(data) != k {
					errCh <- fmt.Errorf("get %s returned %q", k, data)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	stop.Store(true)
	flapper.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if gets := counter(reg, "nsdf_shard_gets_total"); gets == 0 {
		t.Fatal("stress run recorded no shard gets")
	}
}

// TestRouterServesIDXDataset proves the transparency claim end to end:
// the router drops under storage.Instrumented and storage.NewIDXBackend
// unchanged, an IDX dataset round-trips through it, and reads keep
// working after a node loss.
func TestRouterServesIDXDataset(t *testing.T) {
	r, flips, _ := newTestCluster(t, 3, shard.Options{Replicas: 2})
	reg := telemetry.NewRegistry()
	store := storage.NewInstrumented(r, reg, "shard")
	be := storage.NewIDXBackend(store, "datasets/demo")
	ctx := context.Background()

	meta, err := idx.NewMeta([]int{128, 64}, []idx.Field{{Name: "v", Type: idx.Float32}})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := idx.Create(ctx, be, meta)
	if err != nil {
		t.Fatal(err)
	}
	g := raster.New(128, 64)
	for i := range g.Data {
		g.Data[i] = float32(i)
	}
	if err := ds.WriteGrid(ctx, "v", 0, g); err != nil {
		t.Fatal(err)
	}
	verify := func(when string) {
		got, _, err := ds.ReadFull(ctx, "v", 0)
		if err != nil {
			t.Fatalf("%s: ReadFull: %v", when, err)
		}
		for i := range g.Data {
			if got.Data[i] != g.Data[i] {
				t.Fatalf("%s: sample %d = %v, want %v", when, i, got.Data[i], g.Data[i])
			}
		}
	}
	verify("all nodes up")
	flips[0].down.Store(true)
	verify("node n0 down")
	if gets := counter(reg, "nsdf_storage_ops_total", "backend", "shard", "op", "get"); gets == 0 {
		t.Fatal("instrumented wrapper saw no gets; layering is broken")
	}
}

func TestParsePeers(t *testing.T) {
	dial := func(target string) storage.Store { return storage.NewClient(target, "") }
	nodes, err := shard.ParsePeers("a=http://h1:9000, b=http://h2:9000", dial)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 || nodes[0].Name != "a" || nodes[1].Name != "b" {
		t.Fatalf("ParsePeers = %+v", nodes)
	}
	if nodes[0].Store == nil || nodes[1].Store == nil {
		t.Fatal("ParsePeers returned nil stores")
	}
	if got, err := shard.ParsePeers("", dial); err != nil || len(got) != 0 {
		t.Fatalf("empty spec = %v, %v", got, err)
	}
	if _, err := shard.ParsePeers("justaurl", dial); err == nil {
		t.Fatal("missing name= accepted")
	}
	if _, err := shard.ParsePeers("=http://h", dial); err == nil {
		t.Fatal("empty name accepted")
	}
}
