package shard_test

import (
	"context"
	"testing"
	"time"

	"nsdfgo/internal/shard"
	"nsdfgo/internal/storage"
	"nsdfgo/internal/telemetry/flight"
	"nsdfgo/internal/telemetry/trace"
)

// tracedGet runs one router Get under a fresh trace and returns the
// completed trace's shard.get spans.
func tracedGet(t *testing.T, r *shard.Router, key string) []trace.SpanData {
	t.Helper()
	col := trace.NewCollector(4)
	root := col.StartTrace("", "test.get")
	ctx := trace.NewContext(context.Background(), root)
	if _, err := r.Get(ctx, key); err != nil {
		t.Fatalf("Get(%s): %v", key, err)
	}
	root.End()
	data := col.Find(root.TraceID())
	if data == nil {
		t.Fatal("trace not retained")
	}
	var spans []trace.SpanData
	for _, sp := range data.Spans {
		if sp.Name == "shard.get" {
			spans = append(spans, sp)
		}
	}
	return spans
}

func TestGetRecordsReplicaSpans(t *testing.T) {
	r, _, _ := newTestCluster(t, 3, shard.Options{Replicas: 2})
	ctx := context.Background()
	if err := r.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	spans := tracedGet(t, r, "k")
	if len(spans) != 1 {
		t.Fatalf("got %d shard.get spans, want 1 (no hedge, no failover)", len(spans))
	}
	sp := spans[0]
	if sp.Attrs["outcome"] != "ok" || sp.Attrs["hedge"] != "false" {
		t.Fatalf("span attrs %v, want outcome=ok hedge=false", sp.Attrs)
	}
	if sp.Attrs["node"] == "" {
		t.Fatal("span has no node attr")
	}
}

// TestHedgeLoserSpanCancelled is the tentpole's hedging guarantee: when
// a hedge wins, the loser's attempt is booked as a cancelled span
// rather than silently dropped, so a trace shows what the hedge cost.
func TestHedgeLoserSpanCancelled(t *testing.T) {
	// Two nodes, R=2: whichever replica the ring ranks first is made
	// slow, so the hedge to the second replica always wins.
	stores := map[string]*slowStore{
		"a": {Store: storage.NewMemStore()},
		"b": {Store: storage.NewMemStore()},
	}
	ctx := context.Background()
	for _, s := range stores {
		if err := s.Store.Put(ctx, "k", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	r, err := shard.NewRouter([]shard.Node{
		{Name: "a", Store: stores["a"]},
		{Name: "b", Store: stores["b"]},
	}, shard.Options{Replicas: 2, HedgeAfter: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	primary := r.Ring().Replicas("k", 2)[0]
	stores[primary].delay = 300 * time.Millisecond
	fl := flight.New(8)
	r.SetFlight(fl)

	spans := tracedGet(t, r, "k")
	if len(spans) != 2 {
		t.Fatalf("got %d shard.get spans, want 2 (winner + loser)", len(spans))
	}
	byOutcome := map[string]trace.SpanData{}
	for _, sp := range spans {
		byOutcome[sp.Attrs["outcome"]] = sp
	}
	winner, ok := byOutcome["ok"]
	if !ok {
		t.Fatalf("no ok span; outcomes %v", byOutcome)
	}
	if winner.Attrs["hedge"] != "true" {
		t.Fatalf("winner hedge attr %q, want true (the hedge won)", winner.Attrs["hedge"])
	}
	loser, ok := byOutcome["cancelled"]
	if !ok {
		t.Fatalf("hedge loser not recorded as cancelled; outcomes %v", byOutcome)
	}
	if loser.Attrs["hedge"] != "false" {
		t.Fatalf("loser hedge attr %q, want false (it was the primary)", loser.Attrs["hedge"])
	}

	// The hedge fire landed in the flight recorder with the trace ID.
	events := fl.Snapshot()
	if len(events) != 1 || events[0].Kind != flight.KindHedgeFired {
		t.Fatalf("flight events = %+v, want one hedge_fired", events)
	}
	if events[0].TraceID == "" {
		t.Fatal("hedge event has no trace ID")
	}
}

func TestFailoverSpanAndFlightEvent(t *testing.T) {
	r, flips, _ := newTestCluster(t, 3, shard.Options{Replicas: 2})
	ctx := context.Background()
	if err := r.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Down the key's first replica: the read must fail over and book an
	// error span for the lost node plus a failover flight event.
	replicas := r.Ring().Replicas("k", 2)
	for i, f := range flips {
		if nodeName(i) == replicas[0] {
			f.down.Store(true)
		}
	}
	fl := flight.New(8)
	r.SetFlight(fl)

	spans := tracedGet(t, r, "k")
	if len(spans) != 2 {
		t.Fatalf("got %d shard.get spans, want 2 (error + ok)", len(spans))
	}
	outcomes := map[string]bool{}
	for _, sp := range spans {
		outcomes[sp.Attrs["outcome"]] = true
	}
	if !outcomes["error"] || !outcomes["ok"] {
		t.Fatalf("outcomes %v, want error and ok", outcomes)
	}
	events := fl.Snapshot()
	if len(events) != 1 || events[0].Kind != flight.KindFailover {
		t.Fatalf("flight events = %+v, want one replica_failover", events)
	}
}

// TestUntracedGetRecordsNothing: without an active trace the span
// bookkeeping must stay out of the way (no panic, no spans).
func TestUntracedGetRecordsNothing(t *testing.T) {
	r, _, _ := newTestCluster(t, 2, shard.Options{Replicas: 2})
	ctx := context.Background()
	if err := r.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
}

func nodeName(i int) string {
	return []string{"n0", "n1", "n2", "n3", "n4", "n5"}[i]
}
