// Package shard federates block reads and writes across multiple
// storage.Store nodes: a consistent-hash ring with virtual nodes places
// every key on R replicas, and Router — itself a storage.Store — fans
// reads out with hedging and failover, so it drops transparently under
// storage.Cached, storage.Instrumented, storage.NewIDXBackend, and the
// IDX fetch pool. This is the paper's Seal Storage + cloud deployment
// story made horizontal: node count becomes the read-throughput knob
// (DataFed-style federated storage), and hedged reads tame the p99 tail
// of any single node.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-node vnode count: enough that key load
// stays within a few percent of uniform across nodes, small enough that
// ring construction and lookup stay trivially cheap.
const DefaultVirtualNodes = 128

// vnode is one virtual position a node occupies on the ring.
type vnode struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring with virtual nodes. Placement is a pure
// function of the membership set: two rings built from the same node
// names (in any insertion order) and the same vnode count place every
// key identically, which is what lets independent routers agree without
// coordination. Membership changes move only the keys owned by the
// affected node (~K/N of them) — the consistent-hashing guarantee the
// rebalance tests pin.
//
// Ring is not safe for concurrent mutation; Router treats it as
// immutable after construction.
type Ring struct {
	virtualNodes int
	vnodes       []vnode // sorted by hash
	nodes        map[string]struct{}
}

// NewRing returns an empty ring with the given vnodes per node
// (DefaultVirtualNodes if <= 0).
func NewRing(virtualNodes int) *Ring {
	if virtualNodes <= 0 {
		virtualNodes = DefaultVirtualNodes
	}
	return &Ring{virtualNodes: virtualNodes, nodes: make(map[string]struct{})}
}

// hashKey is the stable 64-bit hash placement is built on: FNV-1a with
// a MurmurHash3-style finalizer. The combination is deliberate on both
// counts — the hash must not change across process restarts or Go
// releases (maphash would), because block keys written by one router
// must be findable by every other; and plain FNV-1a of short,
// near-identical block keys clusters badly on the ring, so the
// finalizer's avalanche restores uniform arc lengths.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add inserts node's vnodes into the ring. Adding a present node is a
// no-op.
func (r *Ring) Add(node string) {
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.virtualNodes; i++ {
		r.vnodes = append(r.vnodes, vnode{hash: hashKey(node + "#" + strconv.Itoa(i)), node: node})
	}
	sort.Slice(r.vnodes, func(i, j int) bool { return r.vnodes[i].hash < r.vnodes[j].hash })
}

// Remove deletes node's vnodes from the ring. Removing an absent node is
// a no-op.
func (r *Ring) Remove(node string) {
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.vnodes[:0]
	for _, v := range r.vnodes {
		if v.node != node {
			kept = append(kept, v)
		}
	}
	r.vnodes = kept
}

// Len reports the number of nodes on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the sorted node names.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// VirtualNodes reports the per-node vnode count.
func (r *Ring) VirtualNodes() int { return r.virtualNodes }

// Primary returns the node owning key, or "" on an empty ring.
func (r *Ring) Primary(key string) string {
	reps := r.Replicas(key, 1)
	if len(reps) == 0 {
		return ""
	}
	return reps[0]
}

// Replicas returns the n distinct nodes responsible for key, in
// preference order: the first vnode at or clockwise of hash(key) names
// the primary, and the walk continues clockwise collecting distinct
// nodes. Fewer than n nodes on the ring returns them all.
func (r *Ring) Replicas(key string, n int) []string {
	if len(r.vnodes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hashKey(key)
	start := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.vnodes) && len(out) < n; i++ {
		v := r.vnodes[(start+i)%len(r.vnodes)]
		if _, dup := seen[v.node]; dup {
			continue
		}
		seen[v.node] = struct{}{}
		out = append(out, v.node)
	}
	return out
}

// Spread counts, for each node, how many of the given keys it owns as
// primary — the load-balance diagnostic the distribution tests and the
// per-node gauges use.
func (r *Ring) Spread(keys []string) map[string]int {
	out := make(map[string]int, len(r.nodes))
	for _, k := range keys {
		out[r.Primary(k)]++
	}
	return out
}

// String summarises the ring for logs.
func (r *Ring) String() string {
	return fmt.Sprintf("shard.Ring{nodes=%d vnodes=%d}", len(r.nodes), len(r.vnodes))
}
