package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"nsdfgo/internal/storage"
	"nsdfgo/internal/telemetry"
	"nsdfgo/internal/telemetry/flight"
	"nsdfgo/internal/telemetry/trace"
)

// Node pairs a fleet-wide stable name with the store serving that
// shard. Names are the ring's placement identity: every router in a
// deployment must use the same names for the same stores, or their
// placements diverge.
type Node struct {
	Name  string
	Store storage.Store
}

// Options configures a Router.
type Options struct {
	// Replicas is R, the number of nodes each key is written to and
	// readable from. Defaults to 2; clamped to the node count.
	Replicas int
	// HedgeAfter is how long a Get waits on the current replica before
	// firing a hedged request at the next one. Pick a p99-ish value: low
	// enough to beat the tail, high enough that almost all responses
	// arrive first and the extra backend load stays in the noise. 0
	// disables hedging (reads still fail over on error).
	HedgeAfter time.Duration
	// VirtualNodes is the per-node vnode count (DefaultVirtualNodes if 0).
	VirtualNodes int
}

// Router is a storage.Store that federates N node stores behind the
// consistent-hash ring. Reads try the key's replicas in ring order,
// hedging a second request after HedgeAfter and failing over on error;
// the first successful response wins and the losers are
// context-cancelled. Writes go to all R replicas in parallel and
// degrade to the survivors — a node loss costs a telemetry counter, not
// an error — so the serving path rides through failures the way the
// paper's multi-node Seal deployment must.
//
// Router is safe for concurrent use.
type Router struct {
	ring       *Ring
	stores     map[string]storage.Store
	replicas   int
	hedgeAfter time.Duration

	// Telemetry is nil until Instrument; every recording site is
	// nil-safe so an uninstrumented router costs nothing.
	gets        *telemetry.Counter
	hedgesFired *telemetry.Counter
	hedgesWon   *telemetry.Counter
	failovers   *telemetry.Counter
	nodeUp      map[string]*telemetry.Gauge
	nodeGets    map[string]*telemetry.Counter

	// fl receives hedge_fired and replica_failover flight events; nil
	// disables (SetFlight).
	fl atomic.Pointer[flight.Recorder]
}

// NewRouter builds a router over the given nodes. At least one node is
// required and names must be unique.
func NewRouter(nodes []Node, opts Options) (*Router, error) {
	if len(nodes) == 0 {
		return nil, errors.New("shard: router needs at least one node")
	}
	if opts.Replicas <= 0 {
		opts.Replicas = 2
	}
	if opts.Replicas > len(nodes) {
		opts.Replicas = len(nodes)
	}
	ring := NewRing(opts.VirtualNodes)
	stores := make(map[string]storage.Store, len(nodes))
	for _, n := range nodes {
		if n.Name == "" || n.Store == nil {
			return nil, fmt.Errorf("shard: node %+v needs a name and a store", n.Name)
		}
		if _, dup := stores[n.Name]; dup {
			return nil, fmt.Errorf("shard: duplicate node name %q", n.Name)
		}
		stores[n.Name] = n.Store
		ring.Add(n.Name)
	}
	return &Router{
		ring:       ring,
		stores:     stores,
		replicas:   opts.Replicas,
		hedgeAfter: opts.HedgeAfter,
	}, nil
}

// Ring exposes the placement ring (read-only by contract).
func (r *Router) Ring() *Ring { return r.ring }

// Replicas reports the configured replication factor.
func (r *Router) Replicas() int { return r.replicas }

// Instrument registers the router's metric families in reg:
// nsdf_shard_{gets,hedges_fired,hedges_won,replica_failovers}_total plus
// the per-node nsdf_shard_node_up / nsdf_shard_node_vnodes gauges and
// nsdf_shard_node_gets_total counters.
func (r *Router) Instrument(reg *telemetry.Registry) {
	r.gets = reg.Counter("nsdf_shard_gets_total")
	r.hedgesFired = reg.Counter("nsdf_shard_hedges_fired_total")
	r.hedgesWon = reg.Counter("nsdf_shard_hedges_won_total")
	r.failovers = reg.Counter("nsdf_shard_replica_failovers_total")
	r.nodeUp = make(map[string]*telemetry.Gauge, len(r.stores))
	r.nodeGets = make(map[string]*telemetry.Counter, len(r.stores))
	for _, name := range r.ring.Nodes() {
		up := reg.Gauge("nsdf_shard_node_up", "node", name)
		up.Set(1)
		r.nodeUp[name] = up
		reg.Gauge("nsdf_shard_node_vnodes", "node", name).Set(float64(r.ring.VirtualNodes()))
		r.nodeGets[name] = reg.Counter("nsdf_shard_node_gets_total", "node", name)
	}
}

// SetFlight wires the flight recorder that receives the router's
// anomaly events: every hedge fired and every replica failover, each
// stamped with the active trace ID. Safe to call concurrently with
// operations.
func (r *Router) SetFlight(fl *flight.Recorder) {
	if fl != nil {
		r.fl.Store(fl)
	}
}

// inc bumps a nil-safe counter.
func inc(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}

// markNode records a node's last-op health in its up gauge.
func (r *Router) markNode(name string, up bool) {
	if g, ok := r.nodeUp[name]; ok {
		v := 0.0
		if up {
			v = 1
		}
		g.Set(v)
	}
}

// nodeFailure reports whether err indicates the node itself failed (as
// opposed to an honest miss or the caller giving up).
func nodeFailure(err error) bool {
	return err != nil &&
		!errors.Is(err, storage.ErrNotExist) &&
		!errors.Is(err, context.Canceled) &&
		!errors.Is(err, context.DeadlineExceeded)
}

// getResult carries one replica's response through the hedging loop.
type getResult struct {
	data   []byte
	err    error
	launch int
}

// Get implements storage.Store with hedged, failing-over reads. The
// request is tried against the key's replicas in ring order: replica
// i+1 launches either when replica i errors (failover) or when
// HedgeAfter elapses with no response (hedge). The first success wins
// and cancels the rest. ErrNotExist from one replica still probes the
// others — a partially-written key must be served from whichever
// replica has it — and only becomes the result once every replica has
// missed.
//
// Under an active trace every replica attempt books a shard.get span
// annotated with its node, whether it was a hedge, and its outcome —
// hedge losers are tagged outcome=cancelled rather than dropped, so a
// trace shows which node the winning bytes came from and what the
// hedge cost.
func (r *Router) Get(ctx context.Context, key string) ([]byte, error) {
	replicas := r.ring.Replicas(key, r.replicas)
	if len(replicas) == 0 {
		return nil, errors.New("shard: ring has no nodes")
	}
	inc(r.gets)

	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Buffered to len(replicas): losers complete their sends after we
	// return, so none of the launched goroutines can leak.
	results := make(chan getResult, len(replicas))
	hedged := make([]bool, len(replicas))
	launchedAt := make([]time.Time, len(replicas))
	settled := make([]bool, len(replicas))
	traced := trace.Active(ctx)
	// span books one replica attempt into the trace. All spans are
	// recorded from this goroutine — losers included, when the winner
	// settles — because a loser's own goroutine can outlive the root
	// span and lose the record.
	span := func(i int, outcome string, end time.Time) {
		settled[i] = true
		if !traced {
			return
		}
		hedge := "false"
		if hedged[i] {
			hedge = "true"
		}
		trace.Record(ctx, "shard.get", launchedAt[i], end,
			trace.Str("node", replicas[i]),
			trace.Str("hedge", hedge),
			trace.Str("outcome", outcome))
	}
	// settleLosers tags every launched-but-unsettled replica cancelled:
	// returning cancels gctx, which aborts their in-flight requests.
	settleLosers := func() {
		if !traced {
			return
		}
		end := time.Now()
		for i := range settled {
			if !launchedAt[i].IsZero() && !settled[i] {
				span(i, "cancelled", end)
			}
		}
	}
	launch := func(i int, isHedge bool) {
		hedged[i] = isHedge
		launchedAt[i] = time.Now()
		st := r.stores[replicas[i]]
		if c, ok := r.nodeGets[replicas[i]]; ok {
			c.Inc()
		}
		go func() {
			data, err := st.Get(gctx, key)
			results <- getResult{data: data, err: err, launch: i}
		}()
	}
	launch(0, false)
	next, outstanding := 1, 1

	var hedgeC <-chan time.Time
	if r.hedgeAfter > 0 && next < len(replicas) {
		t := time.NewTimer(r.hedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}

	var firstErr, miss error
	for outstanding > 0 {
		select {
		case res := <-results:
			outstanding--
			name := replicas[res.launch]
			if res.err == nil {
				r.markNode(name, true)
				if hedged[res.launch] {
					inc(r.hedgesWon)
				}
				span(res.launch, "ok", time.Now())
				settleLosers()
				return res.data, nil
			}
			if err := ctx.Err(); err != nil {
				span(res.launch, "cancelled", time.Now())
				settleLosers()
				return nil, err
			}
			if nodeFailure(res.err) {
				span(res.launch, "error", time.Now())
				r.markNode(name, false)
				if firstErr == nil {
					firstErr = res.err
				}
				if next < len(replicas) {
					inc(r.failovers)
					r.fl.Load().Record(flight.KindFailover, trace.ID(ctx),
						"get key=%s node=%s -> %s err=%v", key, name, replicas[next], res.err)
				}
			} else if errors.Is(res.err, storage.ErrNotExist) {
				span(res.launch, "miss", time.Now())
				r.markNode(name, true)
				miss = res.err
			} else {
				span(res.launch, "cancelled", time.Now())
			}
			if next < len(replicas) {
				launch(next, false)
				next++
				outstanding++
			}
		case <-hedgeC:
			hedgeC = nil
			if next < len(replicas) {
				inc(r.hedgesFired)
				r.fl.Load().Record(flight.KindHedgeFired, trace.ID(ctx),
					"get key=%s replica=%s after=%s", key, replicas[next], r.hedgeAfter)
				launch(next, true)
				next++
				outstanding++
			}
		case <-ctx.Done():
			settleLosers()
			return nil, ctx.Err()
		}
	}
	if miss != nil && firstErr == nil {
		return nil, miss
	}
	if firstErr != nil {
		return nil, fmt.Errorf("shard: all %d replicas of %q failed: %w", len(replicas), key, firstErr)
	}
	return nil, fmt.Errorf("%w: %q", storage.ErrNotExist, key)
}

// fanOut runs op against every named node in parallel and returns the
// per-node errors in the same order.
func (r *Router) fanOut(ctx context.Context, names []string, op func(ctx context.Context, st storage.Store) error) []error {
	errs := make([]error, len(names))
	done := make(chan int, len(names))
	for i, name := range names {
		go func(i int, st storage.Store) {
			errs[i] = op(ctx, st)
			done <- i
		}(i, r.stores[name])
	}
	for range names {
		<-done
	}
	return errs
}

// writeQuorum folds a replicated write's per-node errors into the
// degraded-mode contract: success if any replica took the write (each
// lost replica books a failover — counted, flight-recorded — and marks
// the node down), the combined error only when every replica failed.
func (r *Router) writeQuorum(ctx context.Context, what string, key string, names []string, errs []error) error {
	var firstErr error
	var lost []int
	ok := 0
	for i, err := range errs {
		if err == nil {
			r.markNode(names[i], true)
			ok++
			continue
		}
		if nodeFailure(err) {
			r.markNode(names[i], false)
		}
		if firstErr == nil {
			firstErr = err
		}
		lost = append(lost, i)
	}
	if ok == 0 {
		return fmt.Errorf("shard: %s %q failed on all %d replicas: %w", what, key, len(names), firstErr)
	}
	for _, i := range lost {
		inc(r.failovers)
		r.fl.Load().Record(flight.KindFailover, trace.ID(ctx),
			"%s key=%s node=%s degraded err=%v", what, key, names[i], errs[i])
	}
	return nil
}

// Put implements storage.Store: the payload is written to all R
// replicas in parallel. Losing a node degrades the key to its surviving
// replicas (counted in nsdf_shard_replica_failovers_total); the write
// only fails when no replica accepted it.
func (r *Router) Put(ctx context.Context, key string, data []byte) error {
	names := r.ring.Replicas(key, r.replicas)
	if len(names) == 0 {
		return errors.New("shard: ring has no nodes")
	}
	errs := r.fanOut(ctx, names, func(ctx context.Context, st storage.Store) error {
		return st.Put(ctx, key, data)
	})
	return r.writeQuorum(ctx, "put", key, names, errs)
}

// Delete implements storage.Store, removing the key from all replicas.
// Like Put it degrades to the surviving replicas.
func (r *Router) Delete(ctx context.Context, key string) error {
	names := r.ring.Replicas(key, r.replicas)
	if len(names) == 0 {
		return errors.New("shard: ring has no nodes")
	}
	errs := r.fanOut(ctx, names, func(ctx context.Context, st storage.Store) error {
		return st.Delete(ctx, key)
	})
	return r.writeQuorum(ctx, "delete", key, names, errs)
}

// Stat implements storage.Store by trying the key's replicas in ring
// order: node failures fail over (counted), and ErrNotExist is returned
// only after every replica has missed.
func (r *Router) Stat(ctx context.Context, key string) (storage.ObjectInfo, error) {
	names := r.ring.Replicas(key, r.replicas)
	if len(names) == 0 {
		return storage.ObjectInfo{}, errors.New("shard: ring has no nodes")
	}
	var firstErr, miss error
	for i, name := range names {
		info, err := r.stores[name].Stat(ctx, key)
		if err == nil {
			r.markNode(name, true)
			return info, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return storage.ObjectInfo{}, cerr
		}
		if nodeFailure(err) {
			r.markNode(name, false)
			if firstErr == nil {
				firstErr = err
			}
			if i < len(names)-1 {
				inc(r.failovers)
			}
		} else if errors.Is(err, storage.ErrNotExist) {
			r.markNode(name, true)
			miss = err
		}
	}
	if miss != nil && firstErr == nil {
		return storage.ObjectInfo{}, miss
	}
	return storage.ObjectInfo{}, fmt.Errorf("shard: stat %q failed on all %d replicas: %w", key, len(names), firstErr)
}

// List implements storage.Store by querying every node in parallel and
// merging the listings (replicated keys deduplicate to one entry).
// Because every key lives on R nodes, the merged listing stays complete
// while fewer than R nodes are down; at R or more failures a listing
// could silently lose keys, so that returns an error instead.
func (r *Router) List(ctx context.Context, prefix string) ([]storage.ObjectInfo, error) {
	names := r.ring.Nodes()
	if len(names) == 0 {
		return nil, errors.New("shard: ring has no nodes")
	}
	lists := make([][]storage.ObjectInfo, len(names))
	errs := make([]error, len(names))
	done := make(chan int, len(names))
	for i, name := range names {
		go func(i int, st storage.Store) {
			lists[i], errs[i] = st.List(ctx, prefix)
			done <- i
		}(i, r.stores[name])
	}
	for range names {
		<-done
	}
	failed := 0
	var firstErr error
	for i, err := range errs {
		if err == nil {
			r.markNode(names[i], true)
			continue
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		failed++
		if nodeFailure(err) {
			r.markNode(names[i], false)
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if failed >= r.replicas {
		return nil, fmt.Errorf("shard: list %q lost %d of %d nodes (replication %d cannot cover it): %w",
			prefix, failed, len(names), r.replicas, firstErr)
	}
	for i := 0; i < failed; i++ {
		inc(r.failovers)
	}
	merged := make(map[string]storage.ObjectInfo)
	for _, l := range lists {
		for _, info := range l {
			if prev, ok := merged[info.Key]; !ok || info.ModTime.After(prev.ModTime) {
				merged[info.Key] = info
			}
		}
	}
	out := make([]storage.ObjectInfo, 0, len(merged))
	for _, info := range merged {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// ParsePeers parses a comma-separated list of name=target peer specs
// ("a=http://host1:9000,b=http://host2:9000"), dialing each target with
// dial. Names are the ring placement identity, so a fleet must use the
// same name for the same store everywhere.
func ParsePeers(spec string, dial func(target string) storage.Store) ([]Node, error) {
	var nodes []Node
	if strings.TrimSpace(spec) == "" {
		return nodes, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, target, ok := strings.Cut(entry, "=")
		if !ok || name == "" || target == "" {
			return nil, fmt.Errorf("shard: bad peer %q (want name=target)", entry)
		}
		nodes = append(nodes, Node{Name: name, Store: dial(target)})
	}
	return nodes, nil
}

// PeerTargets parses the same name=target spec as ParsePeers into a
// name -> base-URL map, without dialing anything — the form federated
// trace assembly wants, since it talks to peers' debug endpoints
// rather than their object planes.
func PeerTargets(spec string) (map[string]string, error) {
	targets := make(map[string]string)
	if strings.TrimSpace(spec) == "" {
		return targets, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, target, ok := strings.Cut(entry, "=")
		if !ok || name == "" || target == "" {
			return nil, fmt.Errorf("shard: bad peer %q (want name=target)", entry)
		}
		targets[name] = target
	}
	return targets, nil
}
