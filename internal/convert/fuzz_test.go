package convert

import (
	"strings"
	"testing"
)

// FuzzSniff throws arbitrary names and payloads at the format sniffer.
// Properties: it never panics; a TIFF verdict implies the full 4-byte
// magic was present (truncated "II"/"MM" prefixes must not be routed to
// the TIFF decoder — the bug class PR 1 fixed); and a recognised format
// is mutually exclusive with an error.
func FuzzSniff(f *testing.F) {
	f.Add("a.tif", []byte("II*\x00rest-of-header"))
	f.Add("a.tif", []byte("MM\x00*rest-of-header"))
	f.Add("trunc.tif", []byte("II*"))
	f.Add("trunc.tif", []byte("II"))
	f.Add("trunc.tif", []byte("MM\x00"))
	f.Add("a.nc", []byte("CDF\x01payload"))
	f.Add("a.nc", []byte("CDF"))
	f.Add("a.h5", []byte("\x89HDF\r\n\x1a\npayload"))
	f.Add("a.png", []byte("\x89PNG\r\n\x1a\npayload"))
	f.Add("a.raw", []byte{})
	f.Add("a.F32", []byte("II"))
	f.Add("noext", []byte("anything"))

	f.Fuzz(func(t *testing.T, name string, data []byte) {
		format, err := Sniff(name, data)
		if (format != "") == (err != nil) {
			t.Fatalf("Sniff(%q, %d bytes) = (%q, %v); want exactly one of format/error", name, len(data), format, err)
		}
		switch format {
		case FormatTIFF:
			if len(data) < 4 || (string(data[:4]) != "II*\x00" && string(data[:4]) != "MM\x00*") {
				t.Fatalf("Sniff(%q) = tiff without the full 4-byte magic: % x", name, data[:min(len(data), 4)])
			}
		case FormatPNG:
			if len(data) < 8 || string(data[:8]) != "\x89PNG\r\n\x1a\n" {
				t.Fatalf("Sniff(%q) = png without the PNG signature", name)
			}
		case FormatRaw:
			ext := strings.ToLower(name[strings.LastIndex(name, ".")+1:])
			if ext != "raw" && ext != "bin" && ext != "f32" {
				t.Fatalf("Sniff(%q) = raw with extension %q", name, ext)
			}
		}
	})
}
