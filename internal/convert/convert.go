// Package convert implements the tutorial's step-2 format versatility:
// "the file conversion to IDX is not limited to TIFF; it supports other
// data formats such as NetCDF, HDF5, RGB, raw/binary". It loads rasters
// from TIFF, NetCDF classic, PNG/RGB images (luminance), and raw
// float32 binary, sniffing the format from content, and converts any of
// them into fields of an IDX dataset.
//
// (NetCDF-4/HDF5 files are detected and rejected with a clear message:
// the HDF5 container is out of scope for a stdlib-only build, and the
// classic encoder here provides the equivalent on-ramp.)
package convert

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"image"
	"image/png"
	"math"
	"path/filepath"
	"strings"

	"nsdfgo/internal/idx"
	"nsdfgo/internal/netcdf"
	"nsdfgo/internal/raster"
	"nsdfgo/internal/tiff"
)

// Format identifies a supported input container.
type Format string

// Supported input formats.
const (
	FormatTIFF   Format = "tiff"
	FormatNetCDF Format = "netcdf"
	FormatPNG    Format = "png"
	FormatRaw    Format = "raw"
)

// Sniff determines the format of a payload from its magic bytes, falling
// back to the file extension for raw binary. TIFF requires the full
// 4-byte magic — byte order mark plus the constant 42 ("II*\0" or
// "MM\0*") — so raw files that merely start with "II" or "MM" are not
// misrouted into the TIFF decoder.
func Sniff(name string, data []byte) (Format, error) {
	switch {
	case len(data) >= 4 && (string(data[:4]) == "II*\x00" || string(data[:4]) == "MM\x00*"):
		return FormatTIFF, nil
	case len(data) >= 4 && string(data[:3]) == "CDF":
		return FormatNetCDF, nil
	case len(data) >= 8 && string(data[:8]) == "\x89HDF\r\n\x1a\n":
		return "", fmt.Errorf("convert: %s is HDF5/NetCDF-4; convert it to NetCDF classic first (stdlib-only build)", name)
	case len(data) >= 8 && string(data[:8]) == "\x89PNG\r\n\x1a\n":
		return FormatPNG, nil
	}
	switch strings.ToLower(filepath.Ext(name)) {
	case ".raw", ".bin", ".f32":
		return FormatRaw, nil
	}
	return "", fmt.Errorf("convert: cannot determine format of %s", name)
}

// Options carries format-specific parameters.
type Options struct {
	// Variable names the NetCDF variable to extract; empty picks the
	// first 2D non-coordinate variable.
	Variable string
	// RawWidth and RawHeight give the dimensions of raw float32 input.
	RawWidth, RawHeight int
}

// LoadRaster decodes a payload of any supported format into a grid.
func LoadRaster(name string, data []byte, opts Options) (*raster.Grid, error) {
	format, err := Sniff(name, data)
	if err != nil {
		return nil, err
	}
	switch format {
	case FormatTIFF:
		im, err := tiff.DecodeBytes(data)
		if err != nil {
			return nil, err
		}
		return im.Grid(), nil
	case FormatNetCDF:
		f, err := netcdf.DecodeBytes(data)
		if err != nil {
			return nil, err
		}
		varName := opts.Variable
		if varName == "" {
			varName, err = pick2DVariable(f)
			if err != nil {
				return nil, err
			}
		}
		return f.Grid(varName)
	case FormatPNG:
		img, err := png.Decode(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("convert: %s: %w", name, err)
		}
		return fromImage(img), nil
	case FormatRaw:
		if opts.RawWidth <= 0 || opts.RawHeight <= 0 {
			return nil, fmt.Errorf("convert: raw input %s needs explicit dimensions", name)
		}
		want := 4 * opts.RawWidth * opts.RawHeight
		if len(data) != want {
			return nil, fmt.Errorf("convert: raw input %s is %d bytes, want %d for %dx%d float32",
				name, len(data), want, opts.RawWidth, opts.RawHeight)
		}
		g := raster.New(opts.RawWidth, opts.RawHeight)
		for i := range g.Data {
			g.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[4*i:]))
		}
		return g, nil
	}
	return nil, fmt.Errorf("convert: unhandled format %q", format)
}

// pick2DVariable returns the first 2D variable that is not a coordinate
// variable (i.e. not named after one of its dimensions).
func pick2DVariable(f *netcdf.File) (string, error) {
	for _, v := range f.Vars {
		if len(v.DimIDs) != 2 {
			continue
		}
		isCoord := false
		for _, id := range v.DimIDs {
			if f.Dims[id].Name == v.Name {
				isCoord = true
			}
		}
		if !isCoord {
			return v.Name, nil
		}
	}
	return "", fmt.Errorf("convert: no 2D data variable in NetCDF file")
}

// fromImage converts any image to a luminance grid in [0,255].
func fromImage(img image.Image) *raster.Grid {
	b := img.Bounds()
	g := raster.New(b.Dx(), b.Dy())
	for y := 0; y < b.Dy(); y++ {
		for x := 0; x < b.Dx(); x++ {
			r, gr, bl, _ := img.At(b.Min.X+x, b.Min.Y+y).RGBA()
			// ITU-R BT.601 luma, 16-bit channels scaled to [0,255].
			luma := (0.299*float64(r) + 0.587*float64(gr) + 0.114*float64(bl)) / 257
			g.Set(x, y, float32(luma))
		}
	}
	return g
}

// Input is one raster destined for an IDX field.
type Input struct {
	// FieldName names the IDX field (sanitised).
	FieldName string
	// Grid holds the samples.
	Grid *raster.Grid
}

// SanitizeFieldName maps an arbitrary file name to a valid IDX field name.
func SanitizeFieldName(name string) string {
	base := strings.TrimSuffix(filepath.Base(name), filepath.Ext(name))
	out := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			return r
		}
		return '_'
	}, base)
	if strings.Trim(out, "_") == "" {
		out = "field"
	}
	return out
}

// IDXOptions tunes how ToIDXWith lays out and writes the dataset.
type IDXOptions struct {
	// BitsPerBlock sets samples per block = 2^BitsPerBlock; 0 keeps the
	// dataset default.
	BitsPerBlock int
	// Codec names the block codec; empty selects the per-type default.
	Codec string
	// WriteParallelism bounds concurrent block writes; 0 uses the
	// dataset default (GOMAXPROCS). See idx.Dataset.SetWriteParallelism.
	WriteParallelism int
}

// ToIDX writes the inputs as fields of a new IDX dataset on the backend
// with default write parallelism. See ToIDXWith.
func ToIDX(ctx context.Context, be idx.Backend, inputs []Input, bitsPerBlock int, codec string) (*idx.Dataset, error) {
	return ToIDXWith(ctx, be, inputs, IDXOptions{BitsPerBlock: bitsPerBlock, Codec: codec})
}

// ToIDXWith writes the inputs as fields of a new IDX dataset on the
// backend. All inputs must share dimensions; georeferencing is taken from
// the first input that has it. ctx bounds all backend I/O. Returns the
// dataset.
func ToIDXWith(ctx context.Context, be idx.Backend, inputs []Input, opts IDXOptions) (*idx.Dataset, error) {
	bitsPerBlock, codec := opts.BitsPerBlock, opts.Codec
	if len(inputs) == 0 {
		return nil, fmt.Errorf("convert: no inputs")
	}
	w, h := inputs[0].Grid.W, inputs[0].Grid.H
	fields := make([]idx.Field, 0, len(inputs))
	seen := map[string]bool{}
	for _, in := range inputs {
		if in.Grid.W != w || in.Grid.H != h {
			return nil, fmt.Errorf("convert: %s is %dx%d; first input is %dx%d", in.FieldName, in.Grid.W, in.Grid.H, w, h)
		}
		if seen[in.FieldName] {
			return nil, fmt.Errorf("convert: duplicate field %q", in.FieldName)
		}
		seen[in.FieldName] = true
		fields = append(fields, idx.Field{Name: in.FieldName, Type: idx.Float32, Codec: codec})
	}
	meta, err := idx.NewMeta([]int{w, h}, fields)
	if err != nil {
		return nil, err
	}
	if bitsPerBlock > 0 {
		meta.BitsPerBlock = bitsPerBlock
		if meta.BitsPerBlock > meta.Bits.Bits() {
			meta.BitsPerBlock = meta.Bits.Bits()
		}
	}
	for _, in := range inputs {
		if in.Grid.Geo != nil {
			geo := *in.Grid.Geo
			meta.Geo = &geo
			break
		}
	}
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	ds, err := idx.Create(ctx, be, meta)
	if err != nil {
		return nil, err
	}
	ds.SetWriteParallelism(opts.WriteParallelism)
	for _, in := range inputs {
		if err := ds.WriteGrid(ctx, in.FieldName, 0, in.Grid); err != nil {
			return nil, fmt.Errorf("convert: write %s: %w", in.FieldName, err)
		}
	}
	return ds, nil
}
