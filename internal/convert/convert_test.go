package convert

import (
	"bytes"
	"context"
	"encoding/binary"
	"image"
	"image/color"
	"image/png"
	"math"
	"testing"

	"nsdfgo/internal/idx"
	"nsdfgo/internal/netcdf"
	"nsdfgo/internal/raster"
	"nsdfgo/internal/tiff"
)

func testGrid(w, h int) *raster.Grid {
	g := raster.New(w, h)
	for i := range g.Data {
		g.Data[i] = float32(i) * 0.5
	}
	return g
}

func encodeTIFF(t *testing.T, g *raster.Grid) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tiff.Encode(&buf, tiff.FromGrid(g), tiff.EncodeOptions{}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func encodeNetCDF(t *testing.T, g *raster.Grid) []byte {
	t.Helper()
	f, err := netcdf.FromGrid("elevation", g, "m")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSniff(t *testing.T) {
	g := testGrid(4, 4)
	cases := []struct {
		name string
		data []byte
		want Format
	}{
		{"x.tif", encodeTIFF(t, g), FormatTIFF},
		{"x.nc", encodeNetCDF(t, g), FormatNetCDF},
		{"x.png", encodePNG(t, 4, 4), FormatPNG},
		{"x.raw", make([]byte, 64), FormatRaw},
		{"x.f32", make([]byte, 64), FormatRaw},
	}
	for _, c := range cases {
		got, err := Sniff(c.name, c.data)
		if err != nil || got != c.want {
			t.Errorf("Sniff(%s) = %q, %v; want %q", c.name, got, err, c.want)
		}
	}
	if _, err := Sniff("mystery.xyz", []byte("???")); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := Sniff("x.h5", []byte("\x89HDF\r\n\x1a\n-rest")); err == nil {
		t.Error("HDF5 should be rejected with guidance")
	}
}

// TestSniffTIFFMagicFullWidth is the regression test for the sniffing
// bug where any payload starting with "II" or "MM" was routed to the
// TIFF decoder: raw float32 data whose first bytes happen to spell a
// byte-order mark must still sniff as raw, and only the full 4-byte
// magic (order mark plus the constant 42) means TIFF.
func TestSniffTIFFMagicFullWidth(t *testing.T) {
	// Little-endian float32 payloads that start with "II" / "MM" but are
	// not TIFF: the first sample's low bytes collide with the mark.
	for _, prefix := range []string{"II", "MM", "II*A", "MM\x00B", "IIxx", "MM*\x00"} {
		data := append([]byte(prefix), make([]byte, 62)...)
		got, err := Sniff("dem.raw", data)
		if err != nil || got != FormatRaw {
			t.Errorf("Sniff(dem.raw, %q...) = %q, %v; want raw", prefix, got, err)
		}
	}
	// The true 4-byte magics are TIFF regardless of extension.
	for _, magic := range []string{"II*\x00", "MM\x00*"} {
		data := append([]byte(magic), make([]byte, 60)...)
		got, err := Sniff("dem.raw", data)
		if err != nil || got != FormatTIFF {
			t.Errorf("Sniff(dem.raw, %q...) = %q, %v; want tiff", magic, got, err)
		}
	}
	// Truncated payloads shorter than the magic cannot be TIFF.
	if got, err := Sniff("x.raw", []byte("II")); err != nil || got != FormatRaw {
		t.Errorf("Sniff(x.raw, short) = %q, %v; want raw", got, err)
	}
}

func encodePNG(t *testing.T, w, h int) []byte {
	t.Helper()
	img := image.NewGray(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.SetGray(x, y, color.Gray{Y: uint8(16 * (y*w + x))})
		}
	}
	var buf bytes.Buffer
	if err := png.Encode(&buf, img); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadRasterTIFF(t *testing.T) {
	g := testGrid(8, 6)
	out, err := LoadRaster("in.tif", encodeTIFF(t, g), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(g, out) {
		t.Error("TIFF load mismatch")
	}
}

func TestLoadRasterNetCDF(t *testing.T) {
	g := testGrid(8, 6)
	g.Geo = &raster.Georef{OriginX: -100, OriginY: 40, PixelW: 0.1, PixelH: 0.1}
	data := encodeNetCDF(t, g)
	// Auto-pick the only 2D data variable.
	out, err := LoadRaster("in.nc", data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(g, out) {
		t.Error("NetCDF load mismatch")
	}
	if out.Geo == nil {
		t.Error("NetCDF georef lost")
	}
	// Explicit variable name.
	out2, err := LoadRaster("in.nc", data, Options{Variable: "elevation"})
	if err != nil || !raster.Equal(g, out2) {
		t.Errorf("explicit variable: %v", err)
	}
	if _, err := LoadRaster("in.nc", data, Options{Variable: "nope"}); err == nil {
		t.Error("unknown variable accepted")
	}
}

func TestLoadRasterPNG(t *testing.T) {
	out, err := LoadRaster("in.png", encodePNG(t, 4, 4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.W != 4 || out.H != 4 {
		t.Fatalf("dims %dx%d", out.W, out.H)
	}
	// Gray value 16 maps to luma ~16.
	if math.Abs(float64(out.At(1, 0))-16) > 1.0 {
		t.Errorf("luma(1,0) = %v, want ~16", out.At(1, 0))
	}
	if out.At(0, 0) >= out.At(3, 3) {
		t.Error("luma gradient lost")
	}
}

func TestLoadRasterRaw(t *testing.T) {
	g := testGrid(5, 3)
	raw := make([]byte, 4*len(g.Data))
	for i, v := range g.Data {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
	}
	out, err := LoadRaster("in.raw", raw, Options{RawWidth: 5, RawHeight: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(g, out) {
		t.Error("raw load mismatch")
	}
	if _, err := LoadRaster("in.raw", raw, Options{}); err == nil {
		t.Error("raw without dims accepted")
	}
	if _, err := LoadRaster("in.raw", raw[:8], Options{RawWidth: 5, RawHeight: 3}); err == nil {
		t.Error("short raw accepted")
	}
}

func TestSanitizeFieldName(t *testing.T) {
	cases := map[string]string{
		"data/tennessee elevation (30m).tif": "tennessee_elevation__30m_",
		"x.nc":                               "x",
		"..":                                 "field", // degenerate names fall back
	}
	for in, want := range cases {
		if got := SanitizeFieldName(in); got != want {
			t.Errorf("SanitizeFieldName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestToIDXMultiFormat(t *testing.T) {
	// One TIFF-derived and one NetCDF-derived field in the same dataset.
	gA := testGrid(16, 8)
	gA.Geo = &raster.Georef{OriginX: 1, OriginY: 2, PixelW: 3, PixelH: 4}
	gB := testGrid(16, 8)
	for i := range gB.Data {
		gB.Data[i] += 1000
	}
	be := idx.NewMemBackend()
	ds, err := ToIDX(context.Background(), be, []Input{
		{FieldName: "from_tiff", Grid: gA},
		{FieldName: "from_netcdf", Grid: gB},
	}, 8, "")
	if err != nil {
		t.Fatal(err)
	}
	outA, _, err := ds.ReadFull(context.Background(), "from_tiff", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(gA, outA) {
		t.Error("field A mismatch")
	}
	outB, _, err := ds.ReadFull(context.Background(), "from_netcdf", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(gB, outB) {
		t.Error("field B mismatch")
	}
	if ds.Meta.Geo == nil || ds.Meta.Geo.OriginX != 1 {
		t.Error("georef not propagated")
	}
}

func TestToIDXValidation(t *testing.T) {
	be := idx.NewMemBackend()
	if _, err := ToIDX(context.Background(), be, nil, 8, ""); err == nil {
		t.Error("empty inputs accepted")
	}
	if _, err := ToIDX(context.Background(), be, []Input{
		{FieldName: "a", Grid: testGrid(4, 4)},
		{FieldName: "b", Grid: testGrid(5, 4)},
	}, 8, ""); err == nil {
		t.Error("mismatched dims accepted")
	}
	if _, err := ToIDX(context.Background(), be, []Input{
		{FieldName: "a", Grid: testGrid(4, 4)},
		{FieldName: "a", Grid: testGrid(4, 4)},
	}, 8, ""); err == nil {
		t.Error("duplicate field accepted")
	}
	if _, err := ToIDX(context.Background(), be, []Input{{FieldName: "a", Grid: testGrid(4, 4)}}, 8, "nope"); err == nil {
		t.Error("unknown codec accepted")
	}
}

func TestEndToEndNetCDFToIDX(t *testing.T) {
	// The full step-2 path for a NetCDF source: encode -> sniff -> load ->
	// ToIDX -> read back identical.
	g := testGrid(32, 20)
	data := encodeNetCDF(t, g)
	loaded, err := LoadRaster("soil.nc", data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := ToIDX(context.Background(), idx.NewMemBackend(), []Input{{FieldName: SanitizeFieldName("soil.nc"), Grid: loaded}}, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	back, _, err := ds.ReadFull(context.Background(), "soil", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(g, back) {
		t.Error("NetCDF->IDX round trip mismatch")
	}
}
