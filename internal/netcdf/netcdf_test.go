package netcdf

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nsdfgo/internal/raster"
)

func sampleFile() *File {
	data := make([]byte, 4*6)
	for i := 0; i < 6; i++ {
		binary.BigEndian.PutUint32(data[4*i:], math.Float32bits(float32(i)*1.5))
	}
	return &File{
		Dims: []Dim{{Name: "y", Len: 2}, {Name: "x", Len: 3}},
		GlobalAttrs: []Attr{
			{Name: "title", Value: "test dataset"},
			{Name: "version", Value: []int32{3}},
		},
		Vars: []Var{{
			Name: "temp", Type: Float, DimIDs: []int{0, 1},
			Attrs: []Attr{
				{Name: "units", Value: "K"},
				{Name: "valid_range", Value: []float32{0, 400}},
			},
			Data: data,
		}},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := sampleFile()
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	// Magic must be CDF-1.
	if got := buf.Bytes()[:4]; string(got) != "CDF\x01" {
		t.Fatalf("magic %q", got)
	}
	back, err := DecodeBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Dims) != 2 || back.Dims[0].Name != "y" || back.Dims[1].Len != 3 {
		t.Errorf("dims %+v", back.Dims)
	}
	if len(back.GlobalAttrs) != 2 {
		t.Fatalf("global attrs %+v", back.GlobalAttrs)
	}
	if back.GlobalAttrs[0].Value.(string) != "test dataset" {
		t.Errorf("title attr %v", back.GlobalAttrs[0].Value)
	}
	if back.GlobalAttrs[1].Value.([]int32)[0] != 3 {
		t.Errorf("version attr %v", back.GlobalAttrs[1].Value)
	}
	v, err := back.Var("temp")
	if err != nil {
		t.Fatal(err)
	}
	if units, ok := v.Attr("units"); !ok || units.(string) != "K" {
		t.Errorf("units attr %v", units)
	}
	if vr, ok := v.Attr("valid_range"); !ok || vr.([]float32)[1] != 400 {
		t.Errorf("valid_range %v", vr)
	}
	if !bytes.Equal(v.Data, f.Vars[0].Data) {
		t.Error("variable payload mismatch")
	}
}

func TestEncodeAllAttrTypes(t *testing.T) {
	f := &File{
		GlobalAttrs: []Attr{
			{Name: "s", Value: "str"},
			{Name: "b", Value: []int8{-1, 2}},
			{Name: "h", Value: []int16{-300}},
			{Name: "i", Value: []int32{1 << 20}},
			{Name: "f", Value: []float32{1.5}},
			{Name: "d", Value: []float64{math.Pi}},
		},
	}
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.GlobalAttrs) != 6 {
		t.Fatalf("%d attrs", len(back.GlobalAttrs))
	}
	if back.GlobalAttrs[1].Value.([]int8)[0] != -1 {
		t.Error("int8 attr")
	}
	if back.GlobalAttrs[2].Value.([]int16)[0] != -300 {
		t.Error("int16 attr")
	}
	if back.GlobalAttrs[5].Value.([]float64)[0] != math.Pi {
		t.Error("float64 attr")
	}
}

func TestValidate(t *testing.T) {
	bad := []*File{
		{Dims: []Dim{{Name: "", Len: 3}}},
		{Dims: []Dim{{Name: "x", Len: 0}}},
		{Vars: []Var{{Name: "", Type: Float}}},
		{Vars: []Var{{Name: "v", Type: Type(99)}}},
		{Dims: []Dim{{Name: "x", Len: 4}}, Vars: []Var{{Name: "v", Type: Float, DimIDs: []int{0}, Data: make([]byte, 4)}}},
		{Vars: []Var{{Name: "v", Type: Float, DimIDs: []int{5}, Data: nil}}},
		{GlobalAttrs: []Attr{{Name: "a", Value: 3.0}}}, // bare float64 unsupported
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"not cdf":   []byte("HDF\x01\x00\x00\x00\x00"),
		"netcdf4":   []byte("CDF\x05\x00\x00\x00\x00"),
		"truncated": []byte("CDF\x01\x00\x00"),
	}
	for name, data := range cases {
		if _, err := DecodeBytes(data); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestMultipleVariablesOffsets(t *testing.T) {
	// Data with size 5 forces padding between variables; offsets must
	// still land correctly.
	f := &File{
		Dims: []Dim{{Name: "n", Len: 5}},
		Vars: []Var{
			{Name: "a", Type: Byte, DimIDs: []int{0}, Data: []byte{1, 2, 3, 4, 5}},
			{Name: "b", Type: Byte, DimIDs: []int{0}, Data: []byte{6, 7, 8, 9, 10}},
		},
	}
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := back.Var("b")
	if b.Data[0] != 6 || b.Data[4] != 10 {
		t.Errorf("variable b payload %v", b.Data)
	}
}

func TestGridRoundTripWithGeoref(t *testing.T) {
	g := raster.New(24, 16)
	for i := range g.Data {
		g.Data[i] = float32(i) * 0.25
	}
	g.Geo = &raster.Georef{OriginX: -90, OriginY: 36, PixelW: 0.05, PixelH: 0.04}
	f, err := FromGrid("soil_moisture", g, "m3 m-3")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Grid("soil_moisture")
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(g, got) {
		t.Error("sample data mismatch")
	}
	if got.Geo == nil {
		t.Fatal("georeferencing not reconstructed from coordinate variables")
	}
	if math.Abs(got.Geo.OriginX-(-90)) > 1e-9 || math.Abs(got.Geo.PixelW-0.05) > 1e-9 {
		t.Errorf("georef %+v", got.Geo)
	}
	if math.Abs(got.Geo.OriginY-36) > 1e-9 || math.Abs(got.Geo.PixelH-0.04) > 1e-9 {
		t.Errorf("georef %+v", got.Geo)
	}
	// CF units attribute present.
	v, _ := back.Var("soil_moisture")
	if u, ok := v.Attr("units"); !ok || u.(string) != "m3 m-3" {
		t.Errorf("units %v", u)
	}
}

func TestGridWithoutGeoref(t *testing.T) {
	g := raster.New(4, 4)
	f, err := FromGrid("v", g, "")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Grid("v")
	if err != nil {
		t.Fatal(err)
	}
	if got.Geo != nil {
		t.Error("phantom georeferencing")
	}
}

func TestGridRejectsWrongShape(t *testing.T) {
	f := &File{
		Dims: []Dim{{Name: "n", Len: 4}},
		Vars: []Var{{Name: "v", Type: Float, DimIDs: []int{0}, Data: make([]byte, 16)}},
	}
	if _, err := f.Grid("v"); err == nil {
		t.Error("1D variable accepted as grid")
	}
	if _, err := f.Grid("missing"); err == nil {
		t.Error("missing variable accepted")
	}
}

func TestGridIntegerTypes(t *testing.T) {
	data := make([]byte, 2*4)
	for i, v := range []int16{-5, 100, 2000, -30000} {
		binary.BigEndian.PutUint16(data[2*i:], uint16(v))
	}
	f := &File{
		Dims: []Dim{{Name: "y", Len: 2}, {Name: "x", Len: 2}},
		Vars: []Var{{Name: "v", Type: Short, DimIDs: []int{0, 1}, Data: data}},
	}
	g, err := f.Grid("v")
	if err != nil {
		t.Fatal(err)
	}
	if g.Data[0] != -5 || g.Data[3] != -30000 {
		t.Errorf("short widening: %v", g.Data)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, wRaw, hRaw uint8) bool {
		w := int(wRaw%20) + 2
		h := int(hRaw%20) + 2
		r := rand.New(rand.NewSource(seed))
		g := raster.New(w, h)
		for i := range g.Data {
			g.Data[i] = float32(r.NormFloat64())
		}
		nc, err := FromGrid("v", g, "1")
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := nc.Encode(&buf); err != nil {
			return false
		}
		back, err := DecodeBytes(buf.Bytes())
		if err != nil {
			return false
		}
		got, err := back.Grid("v")
		return err == nil && raster.Equal(g, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncode512(b *testing.B) {
	g := raster.New(512, 512)
	for i := range g.Data {
		g.Data[i] = float32(i)
	}
	f, err := FromGrid("v", g, "m")
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(4 * len(g.Data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := f.Encode(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
