package netcdf

import (
	"encoding/binary"
	"fmt"
	"math"

	"nsdfgo/internal/raster"
)

// FromGrid builds a CF-style NetCDF dataset from a raster grid: a 2D
// float variable over (lat, lon) dimensions, with coordinate variables
// carrying the georeferencing (when present) and conventional units
// attributes — the shape SOMOSPIE's inputs arrive in.
func FromGrid(varName string, g *raster.Grid, units string) (*File, error) {
	if g.W <= 0 || g.H <= 0 || len(g.Data) != g.W*g.H {
		return nil, fmt.Errorf("netcdf: malformed grid %dx%d", g.W, g.H)
	}
	f := &File{
		Dims: []Dim{{Name: "lat", Len: g.H}, {Name: "lon", Len: g.W}},
		GlobalAttrs: []Attr{
			{Name: "Conventions", Value: "CF-1.8"},
			{Name: "source", Value: "nsdfgo synthetic reproduction"},
		},
	}
	if g.Geo != nil {
		lat := make([]byte, 8*g.H)
		for y := 0; y < g.H; y++ {
			_, gy := g.Geo.PixelToGeo(0, y)
			binary.BigEndian.PutUint64(lat[8*y:], math.Float64bits(gy))
		}
		lon := make([]byte, 8*g.W)
		for x := 0; x < g.W; x++ {
			gx, _ := g.Geo.PixelToGeo(x, 0)
			binary.BigEndian.PutUint64(lon[8*x:], math.Float64bits(gx))
		}
		f.Vars = append(f.Vars,
			Var{Name: "lat", Type: Double, DimIDs: []int{0}, Data: lat,
				Attrs: []Attr{{Name: "units", Value: "degrees_north"}}},
			Var{Name: "lon", Type: Double, DimIDs: []int{1}, Data: lon,
				Attrs: []Attr{{Name: "units", Value: "degrees_east"}}},
		)
	}
	payload := make([]byte, 4*len(g.Data))
	for i, v := range g.Data {
		binary.BigEndian.PutUint32(payload[4*i:], math.Float32bits(v))
	}
	mainVar := Var{Name: varName, Type: Float, DimIDs: []int{0, 1}, Data: payload}
	if units != "" {
		mainVar.Attrs = append(mainVar.Attrs, Attr{Name: "units", Value: units})
	}
	f.Vars = append(f.Vars, mainVar)
	return f, nil
}

// Grid extracts a 2D numeric variable as a raster grid, reconstructing
// georeferencing from CF coordinate variables when they are regular.
func (f *File) Grid(varName string) (*raster.Grid, error) {
	v, err := f.Var(varName)
	if err != nil {
		return nil, err
	}
	if len(v.DimIDs) != 2 {
		return nil, fmt.Errorf("netcdf: variable %q has %d dimensions, want 2", varName, len(v.DimIDs))
	}
	h := f.Dims[v.DimIDs[0]].Len
	w := f.Dims[v.DimIDs[1]].Len
	g := raster.New(w, h)
	sz := v.Type.Size()
	for i := 0; i < w*h; i++ {
		off := i * sz
		switch v.Type {
		case Float:
			g.Data[i] = math.Float32frombits(binary.BigEndian.Uint32(v.Data[off:]))
		case Double:
			g.Data[i] = float32(math.Float64frombits(binary.BigEndian.Uint64(v.Data[off:])))
		case Short:
			g.Data[i] = float32(int16(binary.BigEndian.Uint16(v.Data[off:])))
		case Int:
			g.Data[i] = float32(int32(binary.BigEndian.Uint32(v.Data[off:])))
		case Byte:
			g.Data[i] = float32(int8(v.Data[off]))
		default:
			return nil, fmt.Errorf("netcdf: variable %q has non-numeric type %s", varName, v.Type)
		}
	}
	// Reconstruct georeferencing from 1D double coordinate variables named
	// after the dimensions, if they form regular ladders.
	latName := f.Dims[v.DimIDs[0]].Name
	lonName := f.Dims[v.DimIDs[1]].Name
	lat, latErr := f.coordLadder(latName, h)
	lon, lonErr := f.coordLadder(lonName, w)
	if latErr == nil && lonErr == nil && h > 1 && w > 1 {
		pixelH := (lat[0] - lat[h-1]) / float64(h-1)
		pixelW := (lon[w-1] - lon[0]) / float64(w-1)
		if pixelH > 0 && pixelW > 0 {
			g.Geo = &raster.Georef{
				OriginX: lon[0] - pixelW/2,
				OriginY: lat[0] + pixelH/2,
				PixelW:  pixelW,
				PixelH:  pixelH,
			}
		}
	}
	return g, nil
}

// coordLadder reads a 1D double coordinate variable of the given length.
func (f *File) coordLadder(name string, n int) ([]float64, error) {
	v, err := f.Var(name)
	if err != nil {
		return nil, err
	}
	if len(v.DimIDs) != 1 || f.Dims[v.DimIDs[0]].Len != n || v.Type != Double {
		return nil, fmt.Errorf("netcdf: %q is not a 1D double coordinate of length %d", name, n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(v.Data[8*i:]))
	}
	return out, nil
}
