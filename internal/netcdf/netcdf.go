// Package netcdf implements the NetCDF classic file format (CDF-1), the
// second scientific container the paper's conversion step supports ("the
// file conversion to IDX is not limited to TIFF; it supports other data
// formats such as NetCDF, HDF5, RGB, raw/binary"). The implementation is
// from scratch and wire-compatible with the NetCDF classic specification
// for fixed-size (non-record) variables: big-endian scalars, 4-byte
// aligned names and attribute payloads, and the standard
// dimension/attribute/variable header lists.
//
// Earth-science products like the ESA-CCI soil-moisture files SOMOSPIE
// consumes are NetCDF; FromGrid/Grid bridge this package to the raster
// type the rest of the stack uses, including CF-style coordinate
// variables for georeferencing.
package netcdf

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Type is a NetCDF external data type.
type Type int32

// NetCDF classic external types.
const (
	Byte   Type = 1
	Char   Type = 2
	Short  Type = 3
	Int    Type = 4
	Float  Type = 5
	Double Type = 6
)

// Size returns the type's size in bytes.
func (t Type) Size() int {
	switch t {
	case Byte, Char:
		return 1
	case Short:
		return 2
	case Int, Float:
		return 4
	case Double:
		return 8
	}
	return 0
}

// String returns the CDL name of the type.
func (t Type) String() string {
	switch t {
	case Byte:
		return "byte"
	case Char:
		return "char"
	case Short:
		return "short"
	case Int:
		return "int"
	case Float:
		return "float"
	case Double:
		return "double"
	}
	return fmt.Sprintf("Type(%d)", int32(t))
}

// Dim is a named dimension.
type Dim struct {
	// Name is the dimension name.
	Name string
	// Len is the dimension length. Record dimensions (Len 0 in the file)
	// are not supported by this implementation.
	Len int
}

// Attr is an attribute: a name with a string or numeric array value.
type Attr struct {
	// Name is the attribute name.
	Name string
	// Value is one of string, []int8, []int16, []int32, []float32, []float64.
	Value any
}

// ncType returns the attribute's external type.
func (a Attr) ncType() (Type, error) {
	switch a.Value.(type) {
	case string:
		return Char, nil
	case []int8:
		return Byte, nil
	case []int16:
		return Short, nil
	case []int32:
		return Int, nil
	case []float32:
		return Float, nil
	case []float64:
		return Double, nil
	}
	return 0, fmt.Errorf("netcdf: unsupported attribute value type %T", a.Value)
}

// Var is a variable over a list of dimensions.
type Var struct {
	// Name is the variable name.
	Name string
	// Type is the external type.
	Type Type
	// DimIDs indexes File.Dims, slowest-varying first.
	DimIDs []int
	// Attrs are the variable's attributes.
	Attrs []Attr
	// Data holds the variable's values in file (big-endian) order. Its
	// length must equal the product of dimension lengths times Type.Size().
	Data []byte
}

// File is an in-memory NetCDF classic dataset.
type File struct {
	// Dims is the dimension list.
	Dims []Dim
	// GlobalAttrs are the file-level attributes.
	GlobalAttrs []Attr
	// Vars is the variable list.
	Vars []Var
}

// Var returns the named variable.
func (f *File) Var(name string) (*Var, error) {
	for i := range f.Vars {
		if f.Vars[i].Name == name {
			return &f.Vars[i], nil
		}
	}
	return nil, fmt.Errorf("netcdf: no variable %q", name)
}

// VarLen returns the number of elements of a variable.
func (f *File) VarLen(v *Var) (int, error) {
	n := 1
	for _, id := range v.DimIDs {
		if id < 0 || id >= len(f.Dims) {
			return 0, fmt.Errorf("netcdf: variable %q references unknown dimension %d", v.Name, id)
		}
		n *= f.Dims[id].Len
	}
	return n, nil
}

// Attr returns a variable attribute value by name.
func (v *Var) Attr(name string) (any, bool) {
	for _, a := range v.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return nil, false
}

// Validate checks the structural invariants before encoding.
func (f *File) Validate() error {
	for i, d := range f.Dims {
		if d.Name == "" || d.Len <= 0 {
			return fmt.Errorf("netcdf: dimension %d (%q, len %d) invalid", i, d.Name, d.Len)
		}
	}
	for i := range f.Vars {
		v := &f.Vars[i]
		if v.Name == "" {
			return fmt.Errorf("netcdf: variable %d has no name", i)
		}
		if v.Type.Size() == 0 {
			return fmt.Errorf("netcdf: variable %q has invalid type", v.Name)
		}
		n, err := f.VarLen(v)
		if err != nil {
			return err
		}
		if len(v.Data) != n*v.Type.Size() {
			return fmt.Errorf("netcdf: variable %q holds %d bytes, want %d", v.Name, len(v.Data), n*v.Type.Size())
		}
		for _, a := range v.Attrs {
			if _, err := a.ncType(); err != nil {
				return fmt.Errorf("netcdf: variable %q: %w", v.Name, err)
			}
		}
	}
	for _, a := range f.GlobalAttrs {
		if _, err := a.ncType(); err != nil {
			return err
		}
	}
	return nil
}

// Header list tags.
const (
	tagDimension = 0x0A
	tagVariable  = 0x0B
	tagAttribute = 0x0C
)

// pad4 returns the number of zero bytes padding n to a 4-byte boundary.
func pad4(n int) int { return (4 - n%4) % 4 }

// writeName emits a name as length + bytes + padding.
func writeName(w *bytes.Buffer, name string) {
	binary.Write(w, binary.BigEndian, uint32(len(name)))
	w.WriteString(name)
	for i := 0; i < pad4(len(name)); i++ {
		w.WriteByte(0)
	}
}

// writeAttrs emits an attribute list (or ABSENT).
func writeAttrs(w *bytes.Buffer, attrs []Attr) error {
	if len(attrs) == 0 {
		binary.Write(w, binary.BigEndian, uint32(0))
		binary.Write(w, binary.BigEndian, uint32(0))
		return nil
	}
	binary.Write(w, binary.BigEndian, uint32(tagAttribute))
	binary.Write(w, binary.BigEndian, uint32(len(attrs)))
	for _, a := range attrs {
		typ, err := a.ncType()
		if err != nil {
			return err
		}
		writeName(w, a.Name)
		binary.Write(w, binary.BigEndian, uint32(typ))
		var payload bytes.Buffer
		switch v := a.Value.(type) {
		case string:
			payload.WriteString(v)
		case []int8:
			for _, x := range v {
				payload.WriteByte(byte(x))
			}
		case []int16:
			for _, x := range v {
				binary.Write(&payload, binary.BigEndian, x)
			}
		case []int32:
			for _, x := range v {
				binary.Write(&payload, binary.BigEndian, x)
			}
		case []float32:
			for _, x := range v {
				binary.Write(&payload, binary.BigEndian, x)
			}
		case []float64:
			for _, x := range v {
				binary.Write(&payload, binary.BigEndian, x)
			}
		}
		nelems := payload.Len() / typ.Size()
		binary.Write(w, binary.BigEndian, uint32(nelems))
		w.Write(payload.Bytes())
		for i := 0; i < pad4(payload.Len()); i++ {
			w.WriteByte(0)
		}
	}
	return nil
}

// Encode writes the dataset in NetCDF classic (CDF-1) format.
func (f *File) Encode(w io.Writer) error {
	if err := f.Validate(); err != nil {
		return err
	}
	var hdr bytes.Buffer
	hdr.WriteString("CDF\x01")
	binary.Write(&hdr, binary.BigEndian, uint32(0)) // numrecs: no record vars

	// Dimension list.
	if len(f.Dims) == 0 {
		binary.Write(&hdr, binary.BigEndian, uint32(0))
		binary.Write(&hdr, binary.BigEndian, uint32(0))
	} else {
		binary.Write(&hdr, binary.BigEndian, uint32(tagDimension))
		binary.Write(&hdr, binary.BigEndian, uint32(len(f.Dims)))
		for _, d := range f.Dims {
			writeName(&hdr, d.Name)
			binary.Write(&hdr, binary.BigEndian, uint32(d.Len))
		}
	}
	if err := writeAttrs(&hdr, f.GlobalAttrs); err != nil {
		return err
	}

	// Variable list: emit once with placeholder offsets to learn the
	// header size, then fix the offsets.
	varList := func(begins []uint32) (*bytes.Buffer, error) {
		var vl bytes.Buffer
		if len(f.Vars) == 0 {
			binary.Write(&vl, binary.BigEndian, uint32(0))
			binary.Write(&vl, binary.BigEndian, uint32(0))
			return &vl, nil
		}
		binary.Write(&vl, binary.BigEndian, uint32(tagVariable))
		binary.Write(&vl, binary.BigEndian, uint32(len(f.Vars)))
		for i := range f.Vars {
			v := &f.Vars[i]
			writeName(&vl, v.Name)
			binary.Write(&vl, binary.BigEndian, uint32(len(v.DimIDs)))
			for _, id := range v.DimIDs {
				binary.Write(&vl, binary.BigEndian, uint32(id))
			}
			if err := writeAttrs(&vl, v.Attrs); err != nil {
				return nil, err
			}
			binary.Write(&vl, binary.BigEndian, uint32(v.Type))
			vsize := len(v.Data) + pad4(len(v.Data))
			binary.Write(&vl, binary.BigEndian, uint32(vsize))
			binary.Write(&vl, binary.BigEndian, begins[i])
		}
		return &vl, nil
	}
	placeholder := make([]uint32, len(f.Vars))
	vl, err := varList(placeholder)
	if err != nil {
		return err
	}
	headerLen := hdr.Len() + vl.Len()
	begins := make([]uint32, len(f.Vars))
	offset := headerLen
	for i := range f.Vars {
		begins[i] = uint32(offset)
		offset += len(f.Vars[i].Data) + pad4(len(f.Vars[i].Data))
	}
	vl, err = varList(begins)
	if err != nil {
		return err
	}
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return err
	}
	if _, err := w.Write(vl.Bytes()); err != nil {
		return err
	}
	for i := range f.Vars {
		if _, err := w.Write(f.Vars[i].Data); err != nil {
			return err
		}
		if p := pad4(len(f.Vars[i].Data)); p > 0 {
			if _, err := w.Write(make([]byte, p)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Decode parses a NetCDF classic (CDF-1 or CDF-2) stream with fixed-size
// variables.
func Decode(r io.Reader) (*File, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("netcdf: read: %w", err)
	}
	return DecodeBytes(data)
}

// DecodeBytes parses an in-memory NetCDF classic file.
func DecodeBytes(data []byte) (*File, error) {
	d := &ncDecoder{data: data}
	return d.decode()
}

type ncDecoder struct {
	data []byte
	pos  int
	// wide selects 64-bit offsets (CDF-2).
	wide bool
}

func (d *ncDecoder) u32() (uint32, error) {
	if d.pos+4 > len(d.data) {
		return 0, fmt.Errorf("netcdf: truncated at offset %d", d.pos)
	}
	v := binary.BigEndian.Uint32(d.data[d.pos:])
	d.pos += 4
	return v, nil
}

func (d *ncDecoder) offset() (int, error) {
	if !d.wide {
		v, err := d.u32()
		return int(v), err
	}
	if d.pos+8 > len(d.data) {
		return 0, fmt.Errorf("netcdf: truncated offset at %d", d.pos)
	}
	v := binary.BigEndian.Uint64(d.data[d.pos:])
	d.pos += 8
	return int(v), nil
}

func (d *ncDecoder) name() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	if d.pos+int(n) > len(d.data) {
		return "", fmt.Errorf("netcdf: truncated name at %d", d.pos)
	}
	s := string(d.data[d.pos : d.pos+int(n)])
	d.pos += int(n) + pad4(int(n))
	return s, nil
}

func (d *ncDecoder) attrs() ([]Attr, error) {
	tag, err := d.u32()
	if err != nil {
		return nil, err
	}
	count, err := d.u32()
	if err != nil {
		return nil, err
	}
	if tag == 0 && count == 0 {
		return nil, nil
	}
	if tag != tagAttribute {
		return nil, fmt.Errorf("netcdf: expected attribute list, got tag %#x", tag)
	}
	out := make([]Attr, 0, count)
	for i := uint32(0); i < count; i++ {
		name, err := d.name()
		if err != nil {
			return nil, err
		}
		typRaw, err := d.u32()
		if err != nil {
			return nil, err
		}
		typ := Type(typRaw)
		if typ.Size() == 0 {
			return nil, fmt.Errorf("netcdf: attribute %q has invalid type %d", name, typRaw)
		}
		nelems, err := d.u32()
		if err != nil {
			return nil, err
		}
		total := int(nelems) * typ.Size()
		if d.pos+total > len(d.data) {
			return nil, fmt.Errorf("netcdf: attribute %q payload truncated", name)
		}
		payload := d.data[d.pos : d.pos+total]
		d.pos += total + pad4(total)
		var value any
		switch typ {
		case Char:
			value = string(payload)
		case Byte:
			v := make([]int8, nelems)
			for j := range v {
				v[j] = int8(payload[j])
			}
			value = v
		case Short:
			v := make([]int16, nelems)
			for j := range v {
				v[j] = int16(binary.BigEndian.Uint16(payload[2*j:]))
			}
			value = v
		case Int:
			v := make([]int32, nelems)
			for j := range v {
				v[j] = int32(binary.BigEndian.Uint32(payload[4*j:]))
			}
			value = v
		case Float:
			v := make([]float32, nelems)
			for j := range v {
				v[j] = math.Float32frombits(binary.BigEndian.Uint32(payload[4*j:]))
			}
			value = v
		case Double:
			v := make([]float64, nelems)
			for j := range v {
				v[j] = math.Float64frombits(binary.BigEndian.Uint64(payload[8*j:]))
			}
			value = v
		}
		out = append(out, Attr{Name: name, Value: value})
	}
	return out, nil
}

func (d *ncDecoder) decode() (*File, error) {
	if len(d.data) < 8 || string(d.data[:3]) != "CDF" {
		return nil, fmt.Errorf("netcdf: not a NetCDF classic file")
	}
	switch d.data[3] {
	case 1:
	case 2:
		d.wide = true
	default:
		return nil, fmt.Errorf("netcdf: unsupported CDF version %d (HDF5-based NetCDF-4 is out of scope)", d.data[3])
	}
	d.pos = 4
	if _, err := d.u32(); err != nil { // numrecs
		return nil, err
	}
	f := &File{}

	// Dimensions.
	tag, err := d.u32()
	if err != nil {
		return nil, err
	}
	count, err := d.u32()
	if err != nil {
		return nil, err
	}
	if tag == tagDimension {
		for i := uint32(0); i < count; i++ {
			name, err := d.name()
			if err != nil {
				return nil, err
			}
			length, err := d.u32()
			if err != nil {
				return nil, err
			}
			if length == 0 {
				return nil, fmt.Errorf("netcdf: record dimension %q unsupported", name)
			}
			f.Dims = append(f.Dims, Dim{Name: name, Len: int(length)})
		}
	} else if tag != 0 || count != 0 {
		return nil, fmt.Errorf("netcdf: expected dimension list, got tag %#x", tag)
	}

	// Global attributes.
	if f.GlobalAttrs, err = d.attrs(); err != nil {
		return nil, err
	}

	// Variables.
	tag, err = d.u32()
	if err != nil {
		return nil, err
	}
	count, err = d.u32()
	if err != nil {
		return nil, err
	}
	if tag == tagVariable {
		for i := uint32(0); i < count; i++ {
			var v Var
			if v.Name, err = d.name(); err != nil {
				return nil, err
			}
			ndims, err := d.u32()
			if err != nil {
				return nil, err
			}
			for j := uint32(0); j < ndims; j++ {
				id, err := d.u32()
				if err != nil {
					return nil, err
				}
				v.DimIDs = append(v.DimIDs, int(id))
			}
			if v.Attrs, err = d.attrs(); err != nil {
				return nil, err
			}
			typRaw, err := d.u32()
			if err != nil {
				return nil, err
			}
			v.Type = Type(typRaw)
			if v.Type.Size() == 0 {
				return nil, fmt.Errorf("netcdf: variable %q has invalid type %d", v.Name, typRaw)
			}
			if _, err := d.u32(); err != nil { // vsize (may be rounded)
				return nil, err
			}
			begin, err := d.offset()
			if err != nil {
				return nil, err
			}
			n, err := f.VarLen(&v)
			if err != nil {
				return nil, err
			}
			total := n * v.Type.Size()
			if begin < 0 || begin+total > len(d.data) {
				return nil, fmt.Errorf("netcdf: variable %q data at %d..%d beyond file", v.Name, begin, begin+total)
			}
			v.Data = d.data[begin : begin+total]
			f.Vars = append(f.Vars, v)
		}
	} else if tag != 0 || count != 0 {
		return nil, fmt.Errorf("netcdf: expected variable list, got tag %#x", tag)
	}
	return f, nil
}
