package hz

import (
	"fmt"
	"math/bits"
)

// This file implements run-based HZ address kernels: instead of
// re-interleaving every lattice point from scratch (PointHZ per sample),
// a box × level query is decomposed into maximal runs of *consecutive*
// HZ addresses, with successor addresses computed by carry-propagating
// masked increments on the interleaved counter. A run maps a contiguous
// span of block samples to a strided span of a row-major output grid, so
// block assembly becomes a handful of bulk scatter/gather loops instead
// of millions of per-sample bit interleaves and map lookups.
//
// The key identity: every sample of exactly level l >= 1 has
// z = q << (m-l+1) | 1 << (m-l) and hz = 2^(l-1) + q, where q is the
// high l-1 bits of z ("the payload counter"). Walking the exact-level-l
// sub-lattice along an axis changes only that axis's bits of q, so
// consecutive lattice points along the fastest axis yield q, q+1, q+2...
// for as long as the axis's payload bits are contiguous from bit 0 —
// which is exactly what the masked-increment run length below measures.

// Run is one maximal run of consecutive HZ addresses produced by HZRuns.
// The run covers samples HZ, HZ+1, ..., HZ+N-1, which land at output
// indices Out, Out+OutStep, ..., Out+(N-1)*OutStep.
type Run struct {
	// HZ is the hierarchical address of the run's first sample.
	HZ uint64
	// Out is the output index of the run's first sample.
	Out int
	// N is the number of samples in the run.
	N int32
	// OutStep is the output index distance between consecutive samples.
	OutStep int32
}

// RunQuery describes a 2D box × level lattice query for HZRuns.
type RunQuery struct {
	// X0, Y0 is the first lattice point; each must be a multiple of the
	// corresponding LevelStrides(Level) stride.
	X0, Y0 int
	// NX, NY are the lattice point counts along each axis.
	NX, NY int
	// Level is the resolution level, 0..Bits().
	Level int
	// OutW is the output row width: lattice point (ix, iy) is assigned
	// output index iy*OutW + ix.
	OutW int
	// SplitShift, when positive, forbids runs from crossing multiples of
	// 2^SplitShift in HZ space, so every run stays inside one storage
	// block of 2^SplitShift samples.
	SplitShift int
}

// maxRunLen bounds a single run so N always fits an int32.
const maxRunLen = 1 << 30

// maskedInc returns the successor of v when counting only in the bit
// positions selected by mask: the masked bits are incremented with carry
// propagation while the unmasked bits are left untouched. lsb must be
// mask & -mask. Classic Morton-walk arithmetic.
func maskedInc(v, mask, lsb uint64) uint64 {
	return (((v | ^mask) + lsb) & mask) | (v &^ mask)
}

// HZRuns decomposes the lattice query q into runs of consecutive HZ
// addresses, appending them to dst (which may be nil) and returning the
// extended slice. Every lattice sample is covered by exactly one run;
// runs are emitted grouped by exact level, not globally sorted.
//
// The mask must be 2-dimensional. Panics on malformed queries (origin
// off the level lattice, level out of range) — these are programming
// errors in the caller's planning code, not data-dependent conditions.
func (b Bitmask) HZRuns(dst []Run, q RunQuery) []Run {
	if b.ndim != 2 {
		panic(fmt.Sprintf("hz: HZRuns requires a 2D bitmask, got %d dims", b.ndim))
	}
	if q.Level < 0 || q.Level > b.m {
		panic(fmt.Sprintf("hz: HZRuns level %d out of range [0,%d]", q.Level, b.m))
	}
	if q.NX <= 0 || q.NY <= 0 {
		return dst
	}
	// Query lattice strides at q.Level (inline LevelStrides, no alloc).
	sx, sy := 1, 1
	for k := q.Level; k < b.m; k++ {
		if b.axes[k] == 0 {
			sx <<= 1
		} else {
			sy <<= 1
		}
	}
	if q.X0%sx != 0 || q.Y0%sy != 0 {
		panic(fmt.Sprintf("hz: HZRuns origin (%d,%d) not on the level-%d lattice (strides %d,%d)",
			q.X0, q.Y0, q.Level, sx, sy))
	}
	xEnd := q.X0 + q.NX*sx
	yEnd := q.Y0 + q.NY*sy
	var blockMask uint64
	if q.SplitShift > 0 {
		blockMask = uint64(1)<<q.SplitShift - 1
	}

	// Level 0 is the single sample at the origin.
	if q.X0 == 0 && q.Y0 == 0 {
		dst = append(dst, Run{HZ: 0, Out: 0, N: 1, OutStep: 1})
	}

	// The level-L lattice is the disjoint union of the exact-level-l
	// sub-lattices for l = 0..L. Intersect each with the query box.
	// cx, cy track LevelStrides(l) as l descends from q.Level to 1.
	cx, cy := sx, sy
	var p [2]int
	for l := q.Level; l >= 1; l-- {
		a := b.axes[l-1]
		// Exact-level-l sub-lattice: LevelStrides(l) doubled along axis a,
		// offset one LevelStrides(l) step along a (see DeltaStrides).
		dsx, dsy := cx, cy
		offx, offy := 0, 0
		if a == 0 {
			offx, dsx = cx, cx*2
		} else {
			offy, dsy = cy, cy*2
		}
		// First sub-lattice point inside the query box along each axis.
		fx, fy := offx, offy
		if q.X0 > offx {
			fx = offx + (q.X0-offx+dsx-1)/dsx*dsx
		}
		if q.Y0 > offy {
			fy = offy + (q.Y0-offy+dsy-1)/dsy*dsy
		}
		if fx < xEnd && fy < yEnd {
			nxl := (xEnd-1-fx)/dsx + 1
			nyl := (yEnd-1-fy)/dsy + 1
			// Output placement: sub-lattice strides are multiples of the
			// query strides, so these divisions are exact.
			outX0 := (fx - q.X0) / sx
			outY0 := (fy - q.Y0) / sy
			outStepX := dsx / sx
			outStepY := dsy / sy

			shift := uint(b.m - l + 1)
			base := uint64(1) << uint(l-1)
			// Payload-space masks: mask character k (k in 0..l-2) owns
			// payload bit l-2-k. Characters l-1..m-1 are dropped by the
			// shift (they encode the fixed exact-level offset pattern).
			var xm, ym uint64
			for k := 0; k+2 <= l; k++ {
				bit := uint64(1) << uint(l-2-k)
				if b.axes[k] == 0 {
					xm |= bit
				} else {
					ym |= bit
				}
			}
			xlsb := xm & -xm
			ylsb := ym & -ym
			// An x-step increments the lowest payload x-bit; consecutive
			// addresses result while the carried-into bits are also x-bits,
			// i.e. for runs of length 2^trailingOnes(xm) aligned to that
			// chunk size.
			tc := bits.TrailingZeros64(^xm)
			chunk := uint64(1) << uint(tc)

			p[0], p[1] = fx, fy
			pc := b.Interleave(p[:]) >> shift
			for iy := 0; iy < nyl; iy++ {
				c := pc
				out := (outY0+iy*outStepY)*q.OutW + outX0
				rem := nxl
				for rem > 0 {
					n := 1
					if tc > 0 {
						n = int(chunk - (c & (chunk - 1)))
					}
					if n > rem {
						n = rem
					}
					if n > maxRunLen {
						n = maxRunLen
					}
					h := base + c
					if blockMask != 0 {
						if room := int(blockMask + 1 - (h & blockMask)); n > room {
							n = room
						}
					}
					dst = append(dst, Run{HZ: h, Out: out, N: int32(n), OutStep: int32(outStepX)})
					rem -= n
					out += n * outStepX
					if rem > 0 {
						c = maskedInc(c+uint64(n)-1, xm, xlsb)
					}
				}
				if iy+1 < nyl {
					pc = maskedInc(pc, ym, ylsb)
				}
			}
		}
		// LevelStrides(l-1) = LevelStrides(l) doubled along axes[l-1].
		if a == 0 {
			cx *= 2
		} else {
			cy *= 2
		}
	}
	return dst
}

// axisStepMask returns the Z-address bit positions holding coordinate
// bits of the given axis with weight >= step (a power of two). Masked
// increments over this mask walk the axis in units of step.
func (b Bitmask) axisStepMask(axis, step int) uint64 {
	if step <= 0 || step&(step-1) != 0 {
		panic(fmt.Sprintf("hz: step %d is not a positive power of two", step))
	}
	j := bits.TrailingZeros(uint(step))
	var mask uint64
	var consumed [MaxDims]int
	for k := b.m - 1; k >= 0; k-- {
		a := b.axes[k]
		if a == axis && consumed[a] >= j {
			mask |= uint64(1) << uint(b.m-1-k)
		}
		consumed[a]++
	}
	return mask
}

// InterleaveRow fills out with the Z-order addresses of len(out) lattice
// points starting at p and advancing along the given axis by step (a
// power of two) per point, using one masked increment per point instead
// of a full re-interleave. The walk must stay inside the mask's
// power-of-two grid. p is not modified.
func (b Bitmask) InterleaveRow(out []uint64, p []int, axis, step int) {
	if len(out) == 0 {
		return
	}
	am := b.axisStepMask(axis, step)
	if am == 0 && len(out) > 1 {
		panic(fmt.Sprintf("hz: axis %d has no bits at step %d; row of %d points cannot advance", axis, step, len(out)))
	}
	lsb := am & -am
	z := b.Interleave(p)
	out[0] = z
	for i := 1; i < len(out); i++ {
		z = maskedInc(z, am, lsb)
		out[i] = z
	}
}

// InterleaveRows fills out (length >= nx*ny, row-major) with the Z-order
// addresses of the 2D lattice {(x0+i*sx, y0+j*sy)}: the batch
// counterpart of calling Interleave nx*ny times. sx and sy must be
// powers of two and the lattice must stay inside the mask's grid.
func (b Bitmask) InterleaveRows(out []uint64, x0, y0, sx, sy, nx, ny int) {
	if b.ndim != 2 {
		panic(fmt.Sprintf("hz: InterleaveRows requires a 2D bitmask, got %d dims", b.ndim))
	}
	if nx <= 0 || ny <= 0 {
		return
	}
	if len(out) < nx*ny {
		panic(fmt.Sprintf("hz: InterleaveRows output holds %d addresses, need %d", len(out), nx*ny))
	}
	xm := b.axisStepMask(0, sx)
	ym := b.axisStepMask(1, sy)
	if (xm == 0 && nx > 1) || (ym == 0 && ny > 1) {
		panic("hz: InterleaveRows stride exceeds the mask's grid")
	}
	xlsb := xm & -xm
	ylsb := ym & -ym
	var p [2]int
	p[0], p[1] = x0, y0
	zr := b.Interleave(p[:])
	for j := 0; j < ny; j++ {
		row := out[j*nx : j*nx+nx]
		z := zr
		row[0] = z
		for i := 1; i < nx; i++ {
			z = maskedInc(z, xm, xlsb)
			row[i] = z
		}
		if j+1 < ny {
			zr = maskedInc(zr, ym, ylsb)
		}
	}
}
