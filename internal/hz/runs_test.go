package hz

import (
	"math/rand"
	"testing"
)

// randomMask2D builds a random 2D bitmask of 2..13 bits using both axes.
func randomMask2D(r *rand.Rand) Bitmask {
	for {
		n := 2 + r.Intn(12)
		body := make([]byte, n)
		has := [2]bool{}
		for i := range body {
			a := r.Intn(2)
			has[a] = true
			body[i] = byte('0' + a)
		}
		if has[0] && has[1] {
			return MustParse("V" + string(body))
		}
	}
}

// expandRuns replays a run plan sample by sample, checking that every
// output index is covered exactly once and (when split) that no run
// crosses a block boundary. It returns output index -> HZ address.
func expandRuns(t *testing.T, runs []Run, splitShift int) map[int]uint64 {
	t.Helper()
	got := make(map[int]uint64)
	for _, run := range runs {
		if run.N <= 0 {
			t.Fatalf("run %+v has non-positive length", run)
		}
		if splitShift > 0 {
			first := run.HZ >> splitShift
			last := (run.HZ + uint64(run.N) - 1) >> splitShift
			if first != last {
				t.Fatalf("run %+v crosses block boundary at shift %d", run, splitShift)
			}
		}
		for i := 0; i < int(run.N); i++ {
			out := run.Out + i*int(run.OutStep)
			if prev, dup := got[out]; dup {
				t.Fatalf("output %d covered twice (hz %d and %d)", out, prev, run.HZ+uint64(i))
			}
			got[out] = run.HZ + uint64(i)
		}
	}
	return got
}

// TestHZRunsMatchPerSample is the core kernel property test: on random
// bitmasks (square and not), levels (including 0 and MaxLevel), boxes,
// and block splits, the run decomposition must assign every lattice
// sample the same HZ address as the per-sample PointHZ reference.
func TestHZRunsMatchPerSample(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 400; trial++ {
		b := randomMask2D(r)
		m := b.Bits()
		L := r.Intn(m + 1)
		if trial%7 == 0 {
			L = 0
		} else if trial%11 == 0 {
			L = m
		}
		s := b.LevelStrides(L)
		sx, sy := s[0], s[1]
		dims := b.Pow2Dims()
		// Random half-open box inside the padded grid, then aligned to
		// the level lattice the way ReadBox aligns it.
		x0 := r.Intn(dims[0])
		x1 := x0 + 1 + r.Intn(dims[0]-x0)
		y0 := r.Intn(dims[1])
		y1 := y0 + 1 + r.Intn(dims[1]-y0)
		ax0 := (x0 + sx - 1) / sx * sx
		ay0 := (y0 + sy - 1) / sy * sy
		if ax0 >= x1 || ay0 >= y1 {
			continue // box contains no lattice samples
		}
		nx := (x1-1-ax0)/sx + 1
		ny := (y1-1-ay0)/sy + 1
		split := 0
		if r.Intn(2) == 0 {
			split = 1 + r.Intn(m)
		}

		runs := b.HZRuns(nil, RunQuery{
			X0: ax0, Y0: ay0, NX: nx, NY: ny, Level: L, OutW: nx, SplitShift: split,
		})
		got := expandRuns(t, runs, split)
		if len(got) != nx*ny {
			t.Fatalf("mask %s level %d box (%d,%d)+%dx%d: runs cover %d samples, want %d",
				b, L, ax0, ay0, nx, ny, len(got), nx*ny)
		}
		p := make([]int, 2)
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				p[0], p[1] = ax0+ix*sx, ay0+iy*sy
				want := b.PointHZ(p)
				if g := got[iy*nx+ix]; g != want {
					t.Fatalf("mask %s level %d box (%d,%d)+%dx%d split %d: sample (%d,%d) hz=%d, want %d",
						b, L, ax0, ay0, nx, ny, split, ix, iy, g, want)
				}
			}
		}
	}
}

// TestHZRunsNonSquareFullGrid pins the decomposition on strongly
// non-square masks: all x bits before all y bits and vice versa, full
// box at full resolution.
func TestHZRunsNonSquareFullGrid(t *testing.T) {
	for _, ms := range []string{"V000111", "V111000", "V0101", "V10", "V01", "V1100110"} {
		b := MustParse(ms)
		dims := b.Pow2Dims()
		w, h := dims[0], dims[1]
		runs := b.HZRuns(nil, RunQuery{NX: w, NY: h, Level: b.Bits(), OutW: w})
		got := expandRuns(t, runs, 0)
		if len(got) != w*h {
			t.Fatalf("mask %s: covered %d of %d samples", ms, len(got), w*h)
		}
		p := make([]int, 2)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				p[0], p[1] = x, y
				if want := b.PointHZ(p); got[y*w+x] != want {
					t.Fatalf("mask %s: (%d,%d) hz=%d, want %d", ms, x, y, got[y*w+x], want)
				}
			}
		}
	}
}

// TestHZRunsLevelZero checks the two level-0 cases: a box containing the
// origin yields the single level-0 sample; a box that misses it yields
// nothing at level 0 (ReadBox rejects such queries before planning).
func TestHZRunsLevelZero(t *testing.T) {
	b := MustParse("V0101")
	runs := b.HZRuns(nil, RunQuery{X0: 0, Y0: 0, NX: 1, NY: 1, Level: 0, OutW: 1})
	if len(runs) != 1 || runs[0].HZ != 0 || runs[0].N != 1 || runs[0].Out != 0 {
		t.Fatalf("level-0 origin query: got %+v", runs)
	}
}

// TestHZRunsAreMaximal verifies the "maximal" half of the contract on an
// alternating mask: a full-resolution full-grid query must produce runs
// averaging at least 2 samples (the finest level alone is half the
// samples in runs of >= 2).
func TestHZRunsAreMaximal(t *testing.T) {
	b := MustParse("V01010101") // 16x16
	runs := b.HZRuns(nil, RunQuery{NX: 16, NY: 16, Level: 8, OutW: 16})
	if len(runs) >= 256 {
		t.Fatalf("256-sample query produced %d runs; kernel is emitting per-sample runs", len(runs))
	}
	// The finest exact level (128 samples, x fastest in the payload) must
	// decompose into runs of exactly 2 here, never 1.
	var finest int
	for _, r := range runs {
		if Level(r.HZ) == 8 {
			finest++
			if r.N != 2 {
				t.Fatalf("finest-level run %+v has length %d, want 2", r, r.N)
			}
		}
	}
	if finest != 64 {
		t.Fatalf("finest level split into %d runs, want 64", finest)
	}
}

// TestInterleaveRowsMatchesInterleave checks the batch 2D interleave
// against the scalar reference on random masks, strides, and origins.
func TestInterleaveRowsMatchesInterleave(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		b := randomMask2D(r)
		L := r.Intn(b.Bits() + 1)
		s := b.LevelStrides(L)
		sx, sy := s[0], s[1]
		dims := b.Pow2Dims()
		nxMax := dims[0] / sx
		nyMax := dims[1] / sy
		nx := 1 + r.Intn(nxMax)
		ny := 1 + r.Intn(nyMax)
		// Random origin leaving room for the walk; origins need not be
		// stride-aligned (low bits ride along untouched).
		x0 := r.Intn(dims[0] - (nx-1)*sx)
		y0 := r.Intn(dims[1] - (ny-1)*sy)

		out := make([]uint64, nx*ny)
		b.InterleaveRows(out, x0, y0, sx, sy, nx, ny)
		p := make([]int, 2)
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				p[0], p[1] = x0+i*sx, y0+j*sy
				if want := b.Interleave(p); out[j*nx+i] != want {
					t.Fatalf("mask %s strides (%d,%d) origin (%d,%d): point (%d,%d) z=%d, want %d",
						b, sx, sy, x0, y0, i, j, out[j*nx+i], want)
				}
			}
		}
	}
}

// TestInterleaveRow3D exercises the n-dimensional row walker on a 3D
// mask along every axis.
func TestInterleaveRow3D(t *testing.T) {
	b := MustParse("V0120120")
	dims := b.Pow2Dims()
	p := make([]int, 3)
	q := make([]int, 3)
	for axis := 0; axis < 3; axis++ {
		for _, step := range []int{1, 2} {
			n := dims[axis] / step
			out := make([]uint64, n)
			p[0], p[1], p[2] = 1, 0, 1
			p[axis] = 0
			b.InterleaveRow(out, p, axis, step)
			for i := 0; i < n; i++ {
				copy(q, p)
				q[axis] = i * step
				if want := b.Interleave(q); out[i] != want {
					t.Fatalf("axis %d step %d: point %d z=%d, want %d", axis, step, i, out[i], want)
				}
			}
		}
	}
}
