package hz

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseValid(t *testing.T) {
	cases := []struct {
		in   string
		bits int
		dims int
	}{
		{"V01", 2, 2},
		{"01", 2, 2},
		{"V0101", 4, 2},
		{"V012012", 6, 3},
		{"V0", 1, 1},
		{"V000111", 6, 2},
	}
	for _, c := range cases {
		b, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if b.Bits() != c.bits {
			t.Errorf("Parse(%q).Bits() = %d, want %d", c.in, b.Bits(), c.bits)
		}
		if b.Dims() != c.dims {
			t.Errorf("Parse(%q).Dims() = %d, want %d", c.in, b.Dims(), c.dims)
		}
	}
}

func TestParseInvalid(t *testing.T) {
	for _, in := range []string{"", "V", "Vab", "V0x1", "V0101010101010101010101010101010101010101010101010101010101010101"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestParseRoundTripString(t *testing.T) {
	b := MustParse("0101")
	if b.String() != "V0101" {
		t.Errorf("String() = %q, want V0101", b.String())
	}
}

func TestGuessSquare(t *testing.T) {
	b, err := Guess([]int{256, 256})
	if err != nil {
		t.Fatal(err)
	}
	if b.Bits() != 16 {
		t.Errorf("Bits() = %d, want 16", b.Bits())
	}
	if b.AxisBits(0) != 8 || b.AxisBits(1) != 8 {
		t.Errorf("AxisBits = %d,%d, want 8,8", b.AxisBits(0), b.AxisBits(1))
	}
}

func TestGuessRectangular(t *testing.T) {
	// 1024 x 64: axis 0 needs 10 bits, axis 1 needs 6. The first 4 coarse
	// bits should all be axis 0.
	b, err := Guess([]int{1024, 64})
	if err != nil {
		t.Fatal(err)
	}
	if b.Bits() != 16 {
		t.Fatalf("Bits() = %d, want 16", b.Bits())
	}
	for k := 0; k < 4; k++ {
		if b.Axis(k) != 0 {
			t.Errorf("Axis(%d) = %d, want 0", k, b.Axis(k))
		}
	}
	d := b.Pow2Dims()
	if d[0] != 1024 || d[1] != 64 {
		t.Errorf("Pow2Dims = %v, want [1024 64]", d)
	}
}

func TestGuessNonPow2Pads(t *testing.T) {
	b, err := Guess([]int{300, 200})
	if err != nil {
		t.Fatal(err)
	}
	d := b.Pow2Dims()
	if d[0] != 512 || d[1] != 256 {
		t.Errorf("Pow2Dims = %v, want [512 256]", d)
	}
}

func TestGuessDegenerate(t *testing.T) {
	b, err := Guess([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if b.Bits() != 1 {
		t.Errorf("Bits() = %d, want 1", b.Bits())
	}
}

func TestGuessErrors(t *testing.T) {
	if _, err := Guess(nil); err == nil {
		t.Error("Guess(nil) succeeded")
	}
	if _, err := Guess([]int{0, 4}); err == nil {
		t.Error("Guess with zero dim succeeded")
	}
	if _, err := Guess([]int{-1}); err == nil {
		t.Error("Guess with negative dim succeeded")
	}
	if _, err := Guess([]int{1 << 40, 1 << 40}); err == nil {
		t.Error("Guess exceeding 62 bits succeeded")
	}
}

func TestInterleaveKnownValues(t *testing.T) {
	// Mask V0101: characters (coarse->fine) 0,1,0,1.
	// Finest char (index 3, axis 1) -> z bit 0 = y bit 0.
	// index 2 (axis 0) -> z bit 1 = x bit 0.
	// index 1 (axis 1) -> z bit 2 = y bit 1.
	// index 0 (axis 0) -> z bit 3 = x bit 1.
	b := MustParse("V0101")
	cases := []struct {
		x, y int
		z    uint64
	}{
		{0, 0, 0},
		{0, 1, 1},
		{1, 0, 2},
		{1, 1, 3},
		{0, 2, 4},
		{2, 0, 8},
		{3, 3, 15},
	}
	for _, c := range cases {
		if got := b.Interleave([]int{c.x, c.y}); got != c.z {
			t.Errorf("Interleave(%d,%d) = %d, want %d", c.x, c.y, got, c.z)
		}
	}
}

func TestDeinterleaveInvertsInterleave(t *testing.T) {
	b := MustParse("V010101")
	p := make([]int, 2)
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			z := b.Interleave([]int{x, y})
			b.Deinterleave(z, p)
			if p[0] != x || p[1] != y {
				t.Fatalf("round trip (%d,%d) -> %d -> (%d,%d)", x, y, z, p[0], p[1])
			}
		}
	}
}

func TestInterleaveBijectionProperty(t *testing.T) {
	b := MustParse("V0120120") // 3D, uneven bits
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := []int{r.Intn(1 << b.AxisBits(0)), r.Intn(1 << b.AxisBits(1)), r.Intn(1 << b.AxisBits(2))}
		z := b.Interleave(p)
		q := make([]int, 3)
		b.Deinterleave(z, q)
		return q[0] == p[0] && q[1] == p[1] && q[2] == p[2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestZHZRoundTripProperty(t *testing.T) {
	const m = 20
	f := func(z uint64) bool {
		z &= (1 << m) - 1
		return HZToZ(ZToHZ(z, m), m) == z
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHZIsBijectionOnFullGrid(t *testing.T) {
	const m = 12
	seen := make([]bool, 1<<m)
	for z := uint64(0); z < 1<<m; z++ {
		h := ZToHZ(z, m)
		if h >= 1<<m {
			t.Fatalf("ZToHZ(%d) = %d out of range", z, h)
		}
		if seen[h] {
			t.Fatalf("HZ address %d produced twice", h)
		}
		seen[h] = true
	}
}

func TestZToHZKnownValues(t *testing.T) {
	// m=4. z=0 -> 0. z=8 (1000b, tz=3, level 1) -> 1.
	// z=4 (0100b, tz=2, level 2) -> 2; z=12 (1100b) -> 3.
	// z=2 (tz=1, level 3) -> 4; z=6 -> 5; z=10 -> 6; z=14 -> 7.
	// z=1 (tz=0, level 4) -> 8; z=3 -> 9; ... z=15 -> 15.
	cases := []struct{ z, h uint64 }{
		{0, 0}, {8, 1}, {4, 2}, {12, 3},
		{2, 4}, {6, 5}, {10, 6}, {14, 7},
		{1, 8}, {3, 9}, {5, 10}, {15, 15},
	}
	for _, c := range cases {
		if got := ZToHZ(c.z, 4); got != c.h {
			t.Errorf("ZToHZ(%d,4) = %d, want %d", c.z, got, c.h)
		}
		if got := HZToZ(c.h, 4); got != c.z {
			t.Errorf("HZToZ(%d,4) = %d, want %d", c.h, got, c.z)
		}
	}
}

func TestLevel(t *testing.T) {
	cases := []struct {
		h uint64
		l int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1 << 20, 21},
	}
	for _, c := range cases {
		if got := Level(c.h); got != c.l {
			t.Errorf("Level(%d) = %d, want %d", c.h, got, c.l)
		}
	}
}

func TestLevelRange(t *testing.T) {
	lo, hi := LevelRange(0, 8)
	if lo != 0 || hi != 1 {
		t.Errorf("LevelRange(0) = [%d,%d), want [0,1)", lo, hi)
	}
	lo, hi = LevelRange(3, 8)
	if lo != 4 || hi != 8 {
		t.Errorf("LevelRange(3) = [%d,%d), want [4,8)", lo, hi)
	}
	// Levels partition [0, 2^m).
	var total uint64
	for l := 0; l <= 8; l++ {
		lo, hi := LevelRange(l, 8)
		total += hi - lo
	}
	if total != 256 {
		t.Errorf("levels cover %d addresses, want 256", total)
	}
}

func TestLevelConsistentWithRange(t *testing.T) {
	const m = 10
	for l := 0; l <= m; l++ {
		lo, hi := LevelRange(l, m)
		for h := lo; h < hi; h += 7 {
			if Level(h) != l {
				t.Fatalf("Level(%d) = %d, want %d", h, Level(h), l)
			}
		}
	}
}

func TestPointHZRoundTrip(t *testing.T) {
	b := MustParse("V01010101")
	p := make([]int, 2)
	for x := 0; x < 16; x += 3 {
		for y := 0; y < 16; y += 3 {
			h := b.PointHZ([]int{x, y})
			b.HZPoint(h, p)
			if p[0] != x || p[1] != y {
				t.Fatalf("HZ point round trip (%d,%d) -> %d -> (%d,%d)", x, y, h, p[0], p[1])
			}
		}
	}
}

func TestLevelStridesFullAndZero(t *testing.T) {
	b := MustParse("V0101")
	s := b.LevelStrides(4)
	if s[0] != 1 || s[1] != 1 {
		t.Errorf("LevelStrides(max) = %v, want [1 1]", s)
	}
	s = b.LevelStrides(0)
	if s[0] != 4 || s[1] != 4 {
		t.Errorf("LevelStrides(0) = %v, want [4 4]", s)
	}
}

func TestLevelStridesIntermediate(t *testing.T) {
	b := MustParse("V0101")
	// Level 1: characters 1..3 remain fine -> axes 1,0,1 -> strides x=2, y=4.
	s := b.LevelStrides(1)
	if s[0] != 2 || s[1] != 4 {
		t.Errorf("LevelStrides(1) = %v, want [2 4]", s)
	}
	// Level 2: characters 2..3 -> axes 0,1 -> strides [2 2].
	s = b.LevelStrides(2)
	if s[0] != 2 || s[1] != 2 {
		t.Errorf("LevelStrides(2) = %v, want [2 2]", s)
	}
}

func TestLevelStridesMatchHZLevels(t *testing.T) {
	// Every point on the level-L lattice must have HZ level <= L, and every
	// grid point with HZ level <= L must be on the lattice.
	b := MustParse("V010101")
	for L := 0; L <= b.Bits(); L++ {
		s := b.LevelStrides(L)
		for x := 0; x < 8; x++ {
			for y := 0; y < 8; y++ {
				h := b.PointHZ([]int{x, y})
				onLattice := x%s[0] == 0 && y%s[1] == 0
				if onLattice != (Level(h) <= L) {
					t.Fatalf("L=%d point (%d,%d): lattice=%v level=%d", L, x, y, onLattice, Level(h))
				}
			}
		}
	}
}

func TestLevelDims(t *testing.T) {
	b := MustParse("V0101")
	d := b.LevelDims(0)
	if d[0] != 1 || d[1] != 1 {
		t.Errorf("LevelDims(0) = %v, want [1 1]", d)
	}
	d = b.LevelDims(4)
	if d[0] != 4 || d[1] != 4 {
		t.Errorf("LevelDims(4) = %v, want [4 4]", d)
	}
}

func TestDeltaStridesPartition(t *testing.T) {
	// The exactly-level-L lattices for L=0..m must partition the grid.
	b := MustParse("V010101")
	count := make(map[[2]int]int)
	for L := 0; L <= b.Bits(); L++ {
		s, off := b.DeltaStrides(L)
		for x := off[0]; x < 8; x += s[0] {
			for y := off[1]; y < 8; y += s[1] {
				count[[2]int{x, y}]++
				h := b.PointHZ([]int{x, y})
				if Level(h) != L {
					t.Fatalf("DeltaStrides(%d) includes (%d,%d) with level %d", L, x, y, Level(h))
				}
			}
		}
	}
	if len(count) != 64 {
		t.Fatalf("delta lattices cover %d points, want 64", len(count))
	}
	for p, c := range count {
		if c != 1 {
			t.Fatalf("point %v covered %d times", p, c)
		}
	}
}

func TestLevelStridesPanicsOutOfRange(t *testing.T) {
	b := MustParse("V01")
	defer func() {
		if recover() == nil {
			t.Error("LevelStrides(-1) did not panic")
		}
	}()
	b.LevelStrides(-1)
}

func TestCeilLog2(t *testing.T) {
	cases := []struct{ v, want int }{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11}}
	for _, c := range cases {
		if got := CeilLog2(c.v); got != c.want {
			t.Errorf("CeilLog2(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHZPrefixIsCoarseVersion(t *testing.T) {
	// Reading HZ addresses [0, 2^L) must yield exactly the level-L lattice.
	b := MustParse("V01010101") // 16x16
	for L := 0; L <= 8; L++ {
		s := b.LevelStrides(L)
		want := (16 / s[0]) * (16 / s[1])
		got := 0
		p := make([]int, 2)
		for h := uint64(0); h < 1<<L; h++ {
			b.HZPoint(h, p)
			if p[0]%s[0] != 0 || p[1]%s[1] != 0 {
				t.Fatalf("L=%d: HZ %d -> (%d,%d) not on lattice stride %v", L, h, p[0], p[1], s)
			}
			got++
		}
		if got != want {
			t.Fatalf("L=%d: prefix holds %d samples, lattice has %d", L, got, want)
		}
	}
}

func BenchmarkInterleave2D(b *testing.B) {
	bm := MustParse("V01010101010101010101") // 1024x1024
	p := []int{513, 257}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = bm.Interleave(p)
	}
}

func BenchmarkPointHZ(b *testing.B) {
	bm := MustParse("V01010101010101010101")
	p := []int{513, 257}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = bm.PointHZ(p)
	}
}

func BenchmarkHZToZ(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = HZToZ(uint64(i)&0xFFFFF, 20)
	}
}
