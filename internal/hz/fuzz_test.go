package hz

import "testing"

// fuzzMasks is the pool of bitmasks the fuzzer selects from; the raw
// fuzz bytes pick one and shape the query, so every generated case is a
// valid mask with arbitrary level, box, and block split.
var fuzzMasks = []string{
	"V01", "V10", "V0101", "V1100", "V010101", "V000111",
	"V111000", "V0101010", "V1100110", "V01010101", "V0110100101",
}

// FuzzHZRuns drives the run-decomposition kernel with fuzzer-chosen
// masks, levels, boxes, and splits, and checks every emitted sample
// against the per-sample PointHZ oracle — the same contract
// TestHZRunsMatchPerSample pins on random inputs, here steered by the
// coverage-guided mutator.
func FuzzHZRuns(f *testing.F) {
	f.Add(uint8(3), uint8(4), uint8(0), uint8(9), uint8(5), uint8(11), uint8(2))
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add(uint8(9), uint8(8), uint8(3), uint8(7), uint8(1), uint8(200), uint8(6))

	f.Fuzz(func(t *testing.T, maskSel, level, rx0, rx1, ry0, ry1, rsplit uint8) {
		b := MustParse(fuzzMasks[int(maskSel)%len(fuzzMasks)])
		m := b.Bits()
		L := int(level) % (m + 1)
		s := b.LevelStrides(L)
		sx, sy := s[0], s[1]
		dims := b.Pow2Dims()

		x0 := int(rx0) % dims[0]
		x1 := x0 + 1 + int(rx1)%(dims[0]-x0)
		y0 := int(ry0) % dims[1]
		y1 := y0 + 1 + int(ry1)%(dims[1]-y0)
		// Align the half-open box to the level lattice the way ReadBox does.
		ax0 := (x0 + sx - 1) / sx * sx
		ay0 := (y0 + sy - 1) / sy * sy
		if ax0 >= x1 || ay0 >= y1 {
			t.Skip("box contains no lattice samples")
		}
		nx := (x1-1-ax0)/sx + 1
		ny := (y1-1-ay0)/sy + 1
		split := int(rsplit) % (m + 1) // 0 = no block splitting

		runs := b.HZRuns(nil, RunQuery{
			X0: ax0, Y0: ay0, NX: nx, NY: ny, Level: L, OutW: nx, SplitShift: split,
		})

		got := make(map[int]uint64, nx*ny)
		for _, run := range runs {
			if run.N <= 0 {
				t.Fatalf("run %+v has non-positive length", run)
			}
			if split > 0 && run.HZ>>split != (run.HZ+uint64(run.N)-1)>>split {
				t.Fatalf("run %+v crosses block boundary at shift %d", run, split)
			}
			for i := 0; i < int(run.N); i++ {
				out := run.Out + i*int(run.OutStep)
				if _, dup := got[out]; dup {
					t.Fatalf("output %d covered twice", out)
				}
				got[out] = run.HZ + uint64(i)
			}
		}
		if len(got) != nx*ny {
			t.Fatalf("mask %s level %d box (%d,%d)+%dx%d: runs cover %d samples, want %d",
				b, L, ax0, ay0, nx, ny, len(got), nx*ny)
		}
		p := make([]int, 2)
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				p[0], p[1] = ax0+ix*sx, ay0+iy*sy
				if want := b.PointHZ(p); got[iy*nx+ix] != want {
					t.Fatalf("mask %s level %d box (%d,%d)+%dx%d split %d: sample (%d,%d) hz=%d, want %d",
						b, L, ax0, ay0, nx, ny, split, ix, iy, got[iy*nx+ix], want)
				}
			}
		}
	})
}
