// Package hz implements Z-order (Morton) and hierarchical Z-order (HZ)
// address arithmetic as used by the IDX multiresolution data format.
//
// The HZ ordering, introduced by Pascucci and Frank for the ViSUS/OpenVisus
// framework, rearranges the samples of a regular n-dimensional grid so that
// all samples belonging to a coarse resolution level are stored contiguously
// before the samples that refine them. A dataset stored in HZ order can be
// read progressively: reading a prefix of the file yields a complete
// coarse version of the data, and each additional level doubles the number
// of samples along one axis.
//
// The ordering is parameterised by a Bitmask: a string such as "V01010101"
// that lists, from coarsest to finest, which axis each bit of the Z-order
// interleave refers to. Axis digits are '0'..'9' mapping to dimensions
// 0..9. The leading 'V' is a convention inherited from the IDX file format.
package hz

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxDims is the maximum number of dimensions supported by a Bitmask.
const MaxDims = 10

// Bitmask describes the interleaving pattern of an n-dimensional Z-order
// curve. The zero value is not usable; construct one with Parse or Guess.
type Bitmask struct {
	str  string // canonical form, e.g. "V0101"
	axes []int  // axes[k] is the axis of bit k, coarsest first
	m    int    // total number of bits (len(axes))
	ndim int    // number of dimensions
	// perAxisBits[a] is the number of bits the mask assigns to axis a.
	perAxisBits []int
}

// Parse parses a bitmask string of the form "V0101...". The leading 'V' is
// optional. Each remaining character must be a digit naming an axis.
func Parse(s string) (Bitmask, error) {
	body := strings.TrimPrefix(s, "V")
	if body == "" {
		return Bitmask{}, fmt.Errorf("hz: empty bitmask %q", s)
	}
	b := Bitmask{axes: make([]int, 0, len(body))}
	maxAxis := -1
	for i, c := range body {
		if c < '0' || c > '9' {
			return Bitmask{}, fmt.Errorf("hz: bitmask %q: invalid axis character %q at position %d", s, c, i)
		}
		a := int(c - '0')
		if a > maxAxis {
			maxAxis = a
		}
		b.axes = append(b.axes, a)
	}
	b.ndim = maxAxis + 1
	b.m = len(b.axes)
	if b.m > 62 {
		return Bitmask{}, fmt.Errorf("hz: bitmask %q has %d bits; maximum is 62", s, b.m)
	}
	b.perAxisBits = make([]int, b.ndim)
	for _, a := range b.axes {
		b.perAxisBits[a]++
	}
	b.str = "V" + body
	return b, nil
}

// MustParse is like Parse but panics on error. Intended for constants and
// tests.
func MustParse(s string) Bitmask {
	b, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return b
}

// Guess constructs a bitmask for a grid with the given dimensions,
// following the same heuristic as OpenVisus: repeatedly split the axis
// with the largest remaining extent, so that the coarsest bits separate
// the longest axes first. Dimensions are rounded up to powers of two.
func Guess(dims []int) (Bitmask, error) {
	if len(dims) == 0 {
		return Bitmask{}, fmt.Errorf("hz: no dimensions")
	}
	if len(dims) > MaxDims {
		return Bitmask{}, fmt.Errorf("hz: %d dimensions; maximum is %d", len(dims), MaxDims)
	}
	need := make([]int, len(dims))
	total := 0
	for i, d := range dims {
		if d <= 0 {
			return Bitmask{}, fmt.Errorf("hz: dimension %d is %d; must be positive", i, d)
		}
		need[i] = ceilLog2(d)
		total += need[i]
	}
	if total == 0 {
		// Degenerate 1x1x... grid: one bit on axis 0 keeps the math simple.
		need[0] = 1
		total = 1
	}
	if total > 62 {
		return Bitmask{}, fmt.Errorf("hz: grid requires %d bits; maximum is 62", total)
	}
	rem := make([]int, len(dims))
	copy(rem, need)
	var sb strings.Builder
	sb.WriteByte('V')
	for k := 0; k < total; k++ {
		best := 0
		for a := 1; a < len(rem); a++ {
			if rem[a] > rem[best] {
				best = a
			}
		}
		rem[best]--
		sb.WriteByte(byte('0' + best))
	}
	return Parse(sb.String())
}

// String returns the canonical "V..." form of the bitmask.
func (b Bitmask) String() string { return b.str }

// Bits returns the total number of bits in the mask. The finest resolution
// level equals Bits(); a full grid holds 2^Bits() sample slots.
func (b Bitmask) Bits() int { return b.m }

// Dims returns the number of dimensions the mask addresses.
func (b Bitmask) Dims() int { return b.ndim }

// AxisBits returns how many bits the mask assigns to axis a, i.e. the
// log2 of the (power-of-two padded) extent along that axis.
func (b Bitmask) AxisBits(a int) int { return b.perAxisBits[a] }

// Pow2Dims returns the power-of-two padded grid dimensions addressed by
// the mask.
func (b Bitmask) Pow2Dims() []int {
	out := make([]int, b.ndim)
	for a := 0; a < b.ndim; a++ {
		out[a] = 1 << b.perAxisBits[a]
	}
	return out
}

// Axis returns the axis assigned to bit k, where k=0 is the coarsest bit.
func (b Bitmask) Axis(k int) int { return b.axes[k] }

// Interleave computes the Z-order (Morton) address of the point p.
// The coordinate bits are distributed according to the mask: the last
// character of the mask (finest) consumes the least-significant bit of its
// axis and becomes bit 0 of the result.
func (b Bitmask) Interleave(p []int) uint64 {
	var z uint64
	// consumed[a] counts how many low bits of coordinate a have been used.
	var consumed [MaxDims]int
	// Walk from finest (end of mask) to coarsest, filling z from bit 0 up.
	for k := b.m - 1; k >= 0; k-- {
		a := b.axes[k]
		bit := uint64(p[a]>>consumed[a]) & 1
		consumed[a]++
		z |= bit << (b.m - 1 - k)
	}
	return z
}

// Deinterleave decomposes the Z-order address z into point coordinates,
// writing them into p, which must have length >= Dims().
func (b Bitmask) Deinterleave(z uint64, p []int) {
	for a := 0; a < b.ndim; a++ {
		p[a] = 0
	}
	var produced [MaxDims]int
	for k := b.m - 1; k >= 0; k-- {
		a := b.axes[k]
		bit := int(z>>(b.m-1-k)) & 1
		p[a] |= bit << produced[a]
		produced[a]++
	}
}

// ZToHZ converts a Z-order address to its hierarchical-Z address under a
// mask with m total bits.
//
// The sample z = 0 has HZ address 0 (level 0). Any other sample belongs to
// level l = m - trailingZeros(z), and its HZ address is
// 2^(l-1) + (z >> (m-l+1)). Level l occupies the contiguous HZ range
// [2^(l-1), 2^l).
func ZToHZ(z uint64, m int) uint64 {
	if z == 0 {
		return 0
	}
	tz := bits.TrailingZeros64(z)
	l := m - tz
	return uint64(1)<<(l-1) + z>>(m-l+1)
}

// HZToZ converts a hierarchical-Z address back to its Z-order address
// under a mask with m total bits. It is the inverse of ZToHZ.
func HZToZ(h uint64, m int) uint64 {
	if h == 0 {
		return 0
	}
	l := bits.Len64(h) // level: h in [2^(l-1), 2^l)
	q := (h-uint64(1)<<(l-1))<<1 | 1
	return q << (m - l)
}

// Level returns the HZ level of the hierarchical address h. Level 0 holds
// exactly one sample; level l>0 holds 2^(l-1) samples.
func Level(h uint64) int {
	return bits.Len64(h)
}

// LevelRange returns the half-open HZ address range [lo, hi) occupied by
// level l under a mask with m bits. Level 0 is [0,1).
func LevelRange(l, m int) (lo, hi uint64) {
	if l == 0 {
		return 0, 1
	}
	return uint64(1) << (l - 1), uint64(1) << l
}

// PointHZ computes the hierarchical-Z address of point p directly.
func (b Bitmask) PointHZ(p []int) uint64 {
	return ZToHZ(b.Interleave(p), b.m)
}

// HZPoint decomposes hierarchical address h into point coordinates.
func (b Bitmask) HZPoint(h uint64, p []int) {
	b.Deinterleave(HZToZ(h, b.m), p)
}

// LevelStrides returns, for resolution level L (0..Bits()), the sampling
// stride along each axis of the lattice formed by all samples of levels
// 0..L. The lattice always includes the origin.
//
// A sample belongs to the level-L lattice iff its Z address is a multiple
// of 2^(m-L); equivalently, for each axis a, its coordinate is a multiple
// of the returned stride[a].
func (b Bitmask) LevelStrides(L int) []int {
	if L < 0 || L > b.m {
		panic(fmt.Sprintf("hz: level %d out of range [0,%d]", L, b.m))
	}
	strides := make([]int, b.ndim)
	for a := range strides {
		strides[a] = 1
	}
	// The low (m-L) bits of z correspond to mask characters L..m-1
	// (coarsest-first indexing). Those coordinate bits must be zero.
	for k := L; k < b.m; k++ {
		strides[b.axes[k]] <<= 1
	}
	return strides
}

// LevelDims returns the number of lattice samples along each axis at
// resolution level L for the power-of-two padded grid.
func (b Bitmask) LevelDims(L int) []int {
	s := b.LevelStrides(L)
	out := make([]int, b.ndim)
	for a := 0; a < b.ndim; a++ {
		out[a] = (1 << b.perAxisBits[a]) / s[a]
	}
	return out
}

// DeltaStrides returns the stride lattice of samples belonging to exactly
// level L (not any coarser level) along with the per-axis offset of that
// sub-lattice. For L=0 the offset is the origin and strides span the full
// grid.
func (b Bitmask) DeltaStrides(L int) (strides, offsets []int) {
	strides = b.LevelStrides(L)
	offsets = make([]int, b.ndim)
	if L == 0 {
		return strides, offsets
	}
	// Samples of exactly level L are on the level-L lattice but not on the
	// level-(L-1) lattice: the coordinate bit consumed by mask character
	// L-1 (axis a) must be 1, so coordinate[a] ≡ strides[a] (mod 2*strides[a]).
	a := b.axes[L-1]
	offsets[a] = strides[a]
	strides[a] *= 2
	return strides, offsets
}

// ceilLog2 returns the smallest k with 2^k >= v, for v >= 1.
func ceilLog2(v int) int {
	if v <= 1 {
		return 0
	}
	return bits.Len(uint(v - 1))
}

// CeilLog2 is the exported form of ceilLog2, used by the idx package to
// compute padded grid extents.
func CeilLog2(v int) int { return ceilLog2(v) }
