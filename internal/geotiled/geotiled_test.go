package geotiled

import (
	"math"
	"testing"
	"testing/quick"

	"nsdfgo/internal/dem"
	"nsdfgo/internal/raster"
)

// plane builds a DEM that is a perfect inclined plane z = ax + by + c,
// for which all terrain parameters have closed-form values.
func plane(w, h int, ax, by, c float64) *raster.Grid {
	g := raster.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.Set(x, y, float32(ax*float64(x)+by*float64(y)+c))
		}
	}
	return g
}

func TestParamStringAndParse(t *testing.T) {
	for _, p := range AllParams {
		got, err := ParseParam(p.String())
		if err != nil || got != p {
			t.Errorf("ParseParam(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseParam("wetness-index"); err == nil {
		t.Error("unknown param accepted")
	}
}

func TestElevationPassthrough(t *testing.T) {
	d := dem.Scale(dem.FBM(32, 32, 1, dem.DefaultFBM()), 0, 1000)
	out, err := Compute(d, Elevation, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(d, out) {
		t.Error("elevation output differs from input")
	}
}

func TestSlopeFlatPlane(t *testing.T) {
	d := plane(16, 16, 0, 0, 100)
	out, err := Compute(d, Slope, Options{CellSizeX: 30, CellSizeY: 30})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Data {
		if v != 0 {
			t.Fatalf("flat plane slope[%d] = %v", i, v)
		}
	}
}

func TestSlopeInclinedPlane(t *testing.T) {
	// z rises 30 units per pixel eastward with 30 m pixels: gradient 1,
	// slope 45 degrees. Edge clamping does not distort a perfect plane's
	// interior cells.
	d := plane(16, 16, 30, 0, 0)
	out, err := Compute(d, Slope, Options{CellSizeX: 30, CellSizeY: 30})
	if err != nil {
		t.Fatal(err)
	}
	for y := 1; y < 15; y++ {
		for x := 1; x < 15; x++ {
			if got := out.At(x, y); math.Abs(float64(got)-45) > 1e-4 {
				t.Fatalf("slope(%d,%d) = %v, want 45", x, y, got)
			}
		}
	}
}

func TestAspectCardinalDirections(t *testing.T) {
	cases := []struct {
		ax, by float64
		want   float64
	}{
		// z increases eastward -> downslope west (270).
		{30, 0, 270},
		// z increases southward (y grows south) -> downslope north (0).
		{0, 30, 0},
		// z increases westward -> downslope east (90).
		{-30, 0, 90},
		// z increases northward -> downslope south (180).
		{0, -30, 180},
	}
	for _, c := range cases {
		d := plane(8, 8, c.ax, c.by, 0)
		out, err := Compute(d, Aspect, Options{CellSizeX: 30, CellSizeY: 30})
		if err != nil {
			t.Fatal(err)
		}
		got := float64(out.At(4, 4))
		diff := math.Abs(got - c.want)
		if diff > 180 {
			diff = 360 - diff
		}
		if diff > 1e-4 {
			t.Errorf("plane(%v,%v): aspect = %v, want %v", c.ax, c.by, got, c.want)
		}
	}
}

func TestAspectFlatSentinel(t *testing.T) {
	d := plane(8, 8, 0, 0, 5)
	out, err := Compute(d, Aspect, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.At(4, 4) != -1 {
		t.Errorf("flat aspect = %v, want -1", out.At(4, 4))
	}
}

func TestHillshadeRange(t *testing.T) {
	d := dem.Scale(dem.FBM(64, 64, 3, dem.DefaultFBM()), 0, 2000)
	out, err := Compute(d, Hillshade, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Data {
		if v < 0 || v > 255 {
			t.Fatalf("hillshade[%d] = %v outside [0,255]", i, v)
		}
	}
}

func TestHillshadeIlluminationDirection(t *testing.T) {
	// Light from azimuth 315 (NW): a NW-facing slope must be brighter than
	// a SE-facing slope.
	nw := plane(8, 8, 30, 30, 0) // downslope toward NW
	se := plane(8, 8, -30, -30, 0)
	onw, _ := Compute(nw, Hillshade, Options{})
	ose, _ := Compute(se, Hillshade, Options{})
	if onw.At(4, 4) <= ose.At(4, 4) {
		t.Errorf("NW-facing %v not brighter than SE-facing %v under NW light", onw.At(4, 4), ose.At(4, 4))
	}
}

func TestCurvatureSigns(t *testing.T) {
	// A parabolic valley z = (x-c)^2 has positive curvature everywhere; a
	// parabolic ridge z = -(x-c)^2 negative; a plane zero.
	const n = 9
	mk := func(f func(x int) float64) *raster.Grid {
		g := raster.New(n, n)
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				g.Set(x, y, float32(f(x)))
			}
		}
		return g
	}
	valley := mk(func(x int) float64 { d := float64(x - 4); return d * d * 10 })
	ridge := mk(func(x int) float64 { d := float64(x - 4); return -d * d * 10 })
	flat := mk(func(x int) float64 { return 42 })
	opts := Options{CellSizeX: 30, CellSizeY: 30}
	cv, err := Compute(valley, Curvature, opts)
	if err != nil {
		t.Fatal(err)
	}
	cr, _ := Compute(ridge, Curvature, opts)
	cf, _ := Compute(flat, Curvature, opts)
	if cv.At(4, 4) <= 0 {
		t.Errorf("valley curvature %v, want positive", cv.At(4, 4))
	}
	if cr.At(4, 4) >= 0 {
		t.Errorf("ridge curvature %v, want negative", cr.At(4, 4))
	}
	if cf.At(4, 4) != 0 {
		t.Errorf("flat curvature %v, want 0", cf.At(4, 4))
	}
}

func TestRoughness(t *testing.T) {
	// On the inclined plane z = 30x the interior roughness is exactly 30
	// (the largest neighbour difference), and a flat plane gives 0.
	d := plane(8, 8, 30, 0, 0)
	out, err := Compute(d, Roughness, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.At(4, 4); got != 30 {
		t.Errorf("roughness = %v, want 30", got)
	}
	flat := plane(8, 8, 0, 0, 7)
	out, _ = Compute(flat, Roughness, Options{})
	if out.At(4, 4) != 0 {
		t.Errorf("flat roughness = %v", out.At(4, 4))
	}
}

func TestNewParamsTiledMatchUntiled(t *testing.T) {
	d := dem.Scale(dem.FBM(130, 95, 4, dem.DefaultFBM()), 0, 1500)
	for _, p := range []Param{Curvature, Roughness} {
		base, err := Compute(d, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		tiled, err := ComputeTiled(d, p, Options{TileSize: 48, Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !raster.Equal(base, tiled) {
			t.Errorf("%s: tiled output differs from baseline", p)
		}
	}
}

func TestNodataPropagates(t *testing.T) {
	d := plane(8, 8, 30, 0, 0)
	d.Set(4, 4, float32(math.NaN()))
	out, err := Compute(d, Slope, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Every cell whose stencil touches (4,4) must be NaN.
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if v := out.At(4+dx, 4+dy); !math.IsNaN(float64(v)) {
				t.Errorf("slope(%d,%d) = %v, want NaN near nodata", 4+dx, 4+dy, v)
			}
		}
	}
	if v := out.At(1, 1); math.IsNaN(float64(v)) {
		t.Error("nodata leaked beyond kernel radius")
	}
}

func TestTiledMatchesUntiledExactly(t *testing.T) {
	d := dem.Scale(dem.FBM(217, 183, 77, dem.DefaultFBM()), 0, 1500) // odd size to force ragged tiles
	for _, p := range AllParams {
		base, err := Compute(d, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		tiled, err := ComputeTiled(d, p, Options{TileSize: 64, Halo: 2, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !raster.Equal(base, tiled) {
			t.Errorf("%s: tiled output differs from untiled baseline", p)
		}
	}
}

func TestTiledSingleTileDegenerate(t *testing.T) {
	d := dem.Scale(dem.FBM(30, 30, 5, dem.DefaultFBM()), 0, 100)
	tiled, err := ComputeTiled(d, Slope, Options{TileSize: 512, Halo: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	base, _ := Compute(d, Slope, Options{})
	if !raster.Equal(base, tiled) {
		t.Error("single-tile output differs")
	}
}

func TestComputeAll(t *testing.T) {
	d := dem.Scale(dem.FBM(64, 48, 2, dem.DefaultFBM()), 0, 800)
	all, err := ComputeAll(d, Options{TileSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(AllParams) {
		t.Fatalf("got %d params, want %d", len(all), len(AllParams))
	}
	for _, p := range AllParams {
		g, ok := all[p]
		if !ok || g.W != 64 || g.H != 48 {
			t.Errorf("%s missing or misshapen", p)
		}
	}
}

func TestGeorefPropagates(t *testing.T) {
	d := dem.Tennessee(64, 32, 3)
	out, err := ComputeTiled(d, Slope, Options{TileSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if out.Geo == nil || out.Geo.OriginX != d.Geo.OriginX {
		t.Error("georeferencing lost")
	}
}

func TestOptionsValidation(t *testing.T) {
	d := plane(4, 4, 1, 0, 0)
	if _, err := Compute(d, Slope, Options{CellSizeX: -1}); err == nil {
		t.Error("negative cell size accepted")
	}
	if _, err := ComputeTiled(d, Slope, Options{Halo: -1}); err == nil {
		t.Error("negative halo accepted")
	}
	if _, err := Compute(raster.New(0, 0), Slope, Options{}); err == nil {
		t.Error("empty DEM accepted")
	}
}

func TestTiles(t *testing.T) {
	tiles := Tiles(100, 50, 32)
	if len(tiles) != 4*2 {
		t.Fatalf("got %d tiles, want 8", len(tiles))
	}
	// Tiles must cover the grid exactly once.
	covered := make([]bool, 100*50)
	for _, tl := range tiles {
		for y := tl.Y0; y < tl.Y0+tl.H; y++ {
			for x := tl.X0; x < tl.X0+tl.W; x++ {
				idx := y*100 + x
				if covered[idx] {
					t.Fatalf("pixel (%d,%d) covered twice", x, y)
				}
				covered[idx] = true
			}
		}
	}
	for i, c := range covered {
		if !c {
			t.Fatalf("pixel %d not covered", i)
		}
	}
}

func TestTilesZeroSizeDefaults(t *testing.T) {
	tiles := Tiles(10, 10, 0)
	if len(tiles) != 1 {
		t.Errorf("got %d tiles", len(tiles))
	}
}

func TestSlopeScalesInverselyWithCellSizeProperty(t *testing.T) {
	// Doubling the cell size halves the gradient: slope must decrease.
	f := func(seed uint16) bool {
		d := dem.Scale(dem.FBM(24, 24, uint64(seed), dem.DefaultFBM()), 0, 500)
		s30, err1 := Compute(d, Slope, Options{CellSizeX: 30, CellSizeY: 30})
		s60, err2 := Compute(d, Slope, Options{CellSizeX: 60, CellSizeY: 60})
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range s30.Data {
			if s60.Data[i] > s30.Data[i]+1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSlopeUntiled512(b *testing.B) {
	d := dem.Scale(dem.FBM(512, 512, 1, dem.DefaultFBM()), 0, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(d, Slope, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSlopeTiled512(b *testing.B) {
	d := dem.Scale(dem.FBM(512, 512, 1, dem.DefaultFBM()), 0, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeTiled(d, Slope, Options{TileSize: 128}); err != nil {
			b.Fatal(err)
		}
	}
}
