// Package geotiled reimplements the GEOtiled terrain-parameter workflow
// (Roa et al., HPDC 2023) used in step 1 of the NSDF tutorial: computing
// high-resolution terrain parameters — elevation, slope, aspect, and
// hillshade — from Digital Elevation Models, using spatial tiling with
// halo buffers to parallelise the computation while preserving accuracy.
//
// The kernels follow Horn's method (Horn 1981), the same finite-difference
// stencils used by GDAL's gdaldem, so tiled and untiled results agree
// bit-for-bit when the halo covers the kernel radius. The untiled path is
// kept as the accuracy and performance baseline the GEOtiled paper
// compares against.
package geotiled

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"nsdfgo/internal/raster"
)

// Param identifies a terrain parameter.
type Param int

// The terrain parameters generated in the tutorial ("the topographic data
// considered in this tutorial include elevation, aspect, slope, and hill
// shading").
const (
	Elevation Param = iota
	Slope
	Aspect
	Hillshade
	// Curvature is the Zevenbergen-Thorne total curvature: negative on
	// convex cells (ridges), positive on concave cells (valleys),
	// scaled by 100.
	Curvature
	// Roughness is the largest absolute elevation difference between a
	// cell and its 3x3 neighbours (Wilson et al. 2007), as in gdaldem TRI
	// tooling.
	Roughness
)

// AllParams lists every parameter in presentation order. The first four
// are the tutorial's default set; curvature and roughness extend GEOtiled
// to the wider parameter family its paper targets.
var AllParams = []Param{Elevation, Slope, Aspect, Hillshade, Curvature, Roughness}

// TutorialParams is the subset the tutorial's exercises generate
// ("elevation, aspect, slope, and hillshading").
var TutorialParams = []Param{Elevation, Slope, Aspect, Hillshade}

// String returns the parameter's name as used in dataset fields and CLI
// flags.
func (p Param) String() string {
	switch p {
	case Elevation:
		return "elevation"
	case Slope:
		return "slope"
	case Aspect:
		return "aspect"
	case Hillshade:
		return "hillshade"
	case Curvature:
		return "curvature"
	case Roughness:
		return "roughness"
	}
	return fmt.Sprintf("Param(%d)", int(p))
}

// ParseParam converts a parameter name to its Param.
func ParseParam(s string) (Param, error) {
	for _, p := range AllParams {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("geotiled: unknown terrain parameter %q", s)
}

// Options configures the terrain computation.
type Options struct {
	// CellSizeX and CellSizeY are the ground extent of one pixel in the
	// same length unit as the elevation values (metres for the tutorial's
	// 30 m DEMs). Zero values default to 30.
	CellSizeX, CellSizeY float64
	// TileSize is the interior tile edge in pixels for the tiled path.
	// Zero defaults to 512.
	TileSize int
	// Halo is the buffer width around each tile. It must be at least the
	// kernel radius (1) for exact seams; zero defaults to 2, matching
	// GEOtiled's conservative buffer.
	Halo int
	// Workers bounds tile parallelism. Zero defaults to GOMAXPROCS.
	Workers int
	// HillshadeAzimuth is the light azimuth in compass degrees (default 315).
	HillshadeAzimuth float64
	// HillshadeAltitude is the light altitude in degrees (default 45).
	HillshadeAltitude float64
}

func (o Options) withDefaults() Options {
	if o.CellSizeX == 0 {
		o.CellSizeX = 30
	}
	if o.CellSizeY == 0 {
		o.CellSizeY = 30
	}
	if o.TileSize == 0 {
		o.TileSize = 512
	}
	if o.Halo == 0 {
		o.Halo = 2
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.HillshadeAzimuth == 0 {
		o.HillshadeAzimuth = 315
	}
	if o.HillshadeAltitude == 0 {
		o.HillshadeAltitude = 45
	}
	return o
}

func (o Options) validate() error {
	if o.CellSizeX < 0 || o.CellSizeY < 0 {
		return fmt.Errorf("geotiled: negative cell size %gx%g", o.CellSizeX, o.CellSizeY)
	}
	if o.TileSize < 0 || o.Halo < 0 || o.Workers < 0 {
		return fmt.Errorf("geotiled: negative tiling parameter")
	}
	return nil
}

// Compute evaluates one terrain parameter over the whole DEM without
// tiling. It is the accuracy baseline for the tiled path and the
// comparator for the Fig. 5 benchmark.
func Compute(dem *raster.Grid, p Param, o Options) (*raster.Grid, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	if dem.W < 1 || dem.H < 1 {
		return nil, fmt.Errorf("geotiled: empty DEM")
	}
	out := raster.New(dem.W, dem.H)
	if dem.Geo != nil {
		geo := *dem.Geo
		out.Geo = &geo
	}
	computeRegion(dem, out, p, o, 0, 0, dem.W, dem.H)
	return out, nil
}

// ComputeTiled evaluates one terrain parameter using GEOtiled's
// partition-compute-mosaic strategy: the DEM is split into TileSize tiles,
// each worker computes its tile with a Halo-wide border of real neighbour
// data, and only tile interiors are mosaicked into the result, yielding
// seam-free output identical to the untiled baseline.
func ComputeTiled(dem *raster.Grid, p Param, o Options) (*raster.Grid, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	if dem.W < 1 || dem.H < 1 {
		return nil, fmt.Errorf("geotiled: empty DEM")
	}
	if o.Halo < 1 {
		return nil, fmt.Errorf("geotiled: halo %d is below the kernel radius 1; seams would be inexact", o.Halo)
	}
	out := raster.New(dem.W, dem.H)
	if dem.Geo != nil {
		geo := *dem.Geo
		out.Geo = &geo
	}
	tiles := Tiles(dem.W, dem.H, o.TileSize)
	sem := make(chan struct{}, o.Workers)
	var wg sync.WaitGroup
	for _, tl := range tiles {
		wg.Add(1)
		sem <- struct{}{}
		go func(tl TileSpec) {
			defer wg.Done()
			defer func() { <-sem }()
			computeRegion(dem, out, p, o, tl.X0, tl.Y0, tl.W, tl.H)
		}(tl)
	}
	wg.Wait()
	return out, nil
}

// ComputeAll evaluates every terrain parameter with the tiled path,
// returning a map keyed by parameter. This is the "GEOtiled Terrain
// Generation component" of Fig. 5.
func ComputeAll(dem *raster.Grid, o Options) (map[Param]*raster.Grid, error) {
	out := make(map[Param]*raster.Grid, len(AllParams))
	for _, p := range AllParams {
		g, err := ComputeTiled(dem, p, o)
		if err != nil {
			return nil, fmt.Errorf("geotiled: %s: %w", p, err)
		}
		out[p] = g
	}
	return out, nil
}

// TileSpec describes one tile interior within the full grid.
type TileSpec struct {
	// X0, Y0 anchor the tile interior in grid pixels.
	X0, Y0 int
	// W, H are the interior extent (edge tiles may be smaller).
	W, H int
}

// Tiles partitions a w x h grid into tileSize x tileSize interiors.
func Tiles(w, h, tileSize int) []TileSpec {
	if tileSize <= 0 {
		tileSize = 512
	}
	var out []TileSpec
	for y := 0; y < h; y += tileSize {
		th := tileSize
		if y+th > h {
			th = h - y
		}
		for x := 0; x < w; x += tileSize {
			tw := tileSize
			if x+tw > w {
				tw = w - x
			}
			out = append(out, TileSpec{X0: x, Y0: y, W: tw, H: th})
		}
	}
	return out
}

// computeRegion fills out[y0:y0+h, x0:x0+w] with parameter p derived from
// dem. The stencil reads dem directly with edge clamping at the *global*
// grid border, so tiled region evaluation is exactly equivalent to a
// single whole-grid pass. (The halo option governs only how much work a
// tile re-reads from its neighbours; since dem is shared in memory here,
// neighbour access is direct. On the distributed GEOtiled the halo is a
// physical copy; the arithmetic is identical.)
func computeRegion(dem *raster.Grid, out *raster.Grid, p Param, o Options, x0, y0, w, h int) {
	switch p {
	case Elevation:
		for y := y0; y < y0+h; y++ {
			copy(out.Data[y*out.W+x0:y*out.W+x0+w], dem.Data[y*dem.W+x0:y*dem.W+x0+w])
		}
		return
	case Slope:
		for y := y0; y < y0+h; y++ {
			for x := x0; x < x0+w; x++ {
				gx, gy, ok := hornGradient(dem, x, y, o)
				if !ok {
					out.Data[y*out.W+x] = nan32
					continue
				}
				out.Data[y*out.W+x] = float32(math.Atan(math.Hypot(gx, gy)) * 180 / math.Pi)
			}
		}
	case Aspect:
		for y := y0; y < y0+h; y++ {
			for x := x0; x < x0+w; x++ {
				gx, gy, ok := hornGradient(dem, x, y, o)
				if !ok {
					out.Data[y*out.W+x] = nan32
					continue
				}
				out.Data[y*out.W+x] = aspectDegrees(gx, gy)
			}
		}
	case Hillshade:
		azRad := o.HillshadeAzimuth * math.Pi / 180
		altRad := o.HillshadeAltitude * math.Pi / 180
		for y := y0; y < y0+h; y++ {
			for x := x0; x < x0+w; x++ {
				gx, gy, ok := hornGradient(dem, x, y, o)
				if !ok {
					out.Data[y*out.W+x] = nan32
					continue
				}
				out.Data[y*out.W+x] = hillshadeValue(gx, gy, azRad, altRad)
			}
		}
	case Curvature:
		for y := y0; y < y0+h; y++ {
			for x := x0; x < x0+w; x++ {
				out.Data[y*out.W+x] = curvatureValue(dem, x, y, o)
			}
		}
	case Roughness:
		for y := y0; y < y0+h; y++ {
			for x := x0; x < x0+w; x++ {
				out.Data[y*out.W+x] = roughnessValue(dem, x, y)
			}
		}
	}
}

// stencil3 gathers the 3x3 neighbourhood with edge clamping; ok=false
// when any sample is non-finite.
func stencil3(dem *raster.Grid, x, y int) (z [3][3]float64, ok bool) {
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			sx := clamp(x+dx, 0, dem.W-1)
			sy := clamp(y+dy, 0, dem.H-1)
			v := float64(dem.Data[sy*dem.W+sx])
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return z, false
			}
			z[dy+1][dx+1] = v
		}
	}
	return z, true
}

// curvatureValue evaluates the Zevenbergen-Thorne total curvature at
// (x,y): 2(D+E)·100 with D and E the second derivatives of the fitted
// quadratic — the discrete Laplacian, so concave cells (valleys) are
// positive and convex cells (ridges) negative, scaled by 100 as in
// common GIS tooling.
func curvatureValue(dem *raster.Grid, x, y int, o Options) float32 {
	z, ok := stencil3(dem, x, y)
	if !ok {
		return nan32
	}
	lx := o.CellSizeX
	ly := o.CellSizeY
	// Z&T: D = ((z4+z6)/2 - z5)/L^2, E = ((z2+z8)/2 - z5)/L^2 with the
	// 1..9 numbering; here z[1][0]=west(z4), z[1][2]=east(z6),
	// z[0][1]=north(z2), z[2][1]=south(z8), z[1][1]=center(z5).
	d := ((z[1][0]+z[1][2])/2 - z[1][1]) / (lx * lx)
	e := ((z[0][1]+z[2][1])/2 - z[1][1]) / (ly * ly)
	return float32(2 * (d + e) * 100)
}

// roughnessValue is the largest absolute difference between the centre
// cell and any 3x3 neighbour.
func roughnessValue(dem *raster.Grid, x, y int) float32 {
	z, ok := stencil3(dem, x, y)
	if !ok {
		return nan32
	}
	c := z[1][1]
	maxDiff := 0.0
	for dy := 0; dy < 3; dy++ {
		for dx := 0; dx < 3; dx++ {
			if d := math.Abs(z[dy][dx] - c); d > maxDiff {
				maxDiff = d
			}
		}
	}
	return float32(maxDiff)
}

var nan32 = float32(math.NaN())

// hornGradient evaluates Horn's 3x3 finite-difference gradient at (x,y).
// gx is the eastward elevation gradient dz/dx; gy is the northward
// gradient dz/dy (row 0 is the north edge). Returns ok=false when any
// stencil sample is non-finite (nodata propagates, as in gdaldem).
func hornGradient(dem *raster.Grid, x, y int, o Options) (gx, gy float64, ok bool) {
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	var z [3][3]float64
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			sx := clamp(x+dx, 0, dem.W-1)
			sy := clamp(y+dy, 0, dem.H-1)
			v := float64(dem.Data[sy*dem.W+sx])
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, 0, false
			}
			z[dy+1][dx+1] = v
		}
	}
	// Horn 1981 weights; a..i laid out north-to-south, west-to-east:
	//   a b c
	//   d e f
	//   g h i
	a, b, c := z[0][0], z[0][1], z[0][2]
	d, f := z[1][0], z[1][2]
	g, hh, i := z[2][0], z[2][1], z[2][2]
	gx = ((c + 2*f + i) - (a + 2*d + g)) / (8 * o.CellSizeX)
	southward := ((g + 2*hh + i) - (a + 2*b + c)) / (8 * o.CellSizeY)
	gy = -southward
	return gx, gy, true
}

// aspectDegrees converts an elevation gradient to a downslope compass
// azimuth in [0,360): 0 = north, 90 = east. Flat cells return -1, the
// gdaldem flat-aspect sentinel.
func aspectDegrees(gx, gy float64) float32 {
	if gx == 0 && gy == 0 {
		return -1
	}
	// Downslope direction is the negative gradient (-gx, -gy) in (E,N)
	// coordinates; atan2(E, N) measures clockwise from north.
	az := math.Atan2(-gx, -gy) * 180 / math.Pi
	if az < 0 {
		az += 360
	}
	return float32(az)
}

// hillshadeValue computes the standard illumination model used by gdaldem:
// 255 * max(0, cos(zenith)cos(slope) + sin(zenith)sin(slope)cos(az-aspect)).
func hillshadeValue(gx, gy, azRad, altRad float64) float32 {
	slope := math.Atan(math.Hypot(gx, gy))
	var aspect float64
	if gx == 0 && gy == 0 {
		aspect = 0
	} else {
		aspect = math.Atan2(-gx, -gy)
	}
	zenith := math.Pi/2 - altRad
	v := math.Cos(zenith)*math.Cos(slope) + math.Sin(zenith)*math.Sin(slope)*math.Cos(azRad-aspect)
	if v < 0 {
		v = 0
	}
	return float32(255 * v)
}
