package colormap

import (
	"image/color"
	"math"
	"testing"
	"testing/quick"
)

func TestNamesContainsBuiltins(t *testing.T) {
	names := Names()
	want := []string{"gray", "moisture", "plasma", "terrain", "viridis"}
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
			}
		}
		if !found {
			t.Errorf("Names() = %v missing %q", names, w)
		}
	}
}

func TestLookup(t *testing.T) {
	m, err := Lookup("viridis")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "viridis" {
		t.Errorf("Name() = %q", m.Name())
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown palette lookup succeeded")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	m, _ := Lookup("gray")
	Register(m)
}

func TestAtEndpoints(t *testing.T) {
	g, _ := Lookup("gray")
	if c := g.At(0); c != (color.RGBA{0, 0, 0, 255}) {
		t.Errorf("gray.At(0) = %v", c)
	}
	if c := g.At(1); c != (color.RGBA{255, 255, 255, 255}) {
		t.Errorf("gray.At(1) = %v", c)
	}
	if c := g.At(0.5); c.R < 126 || c.R > 129 {
		t.Errorf("gray.At(0.5).R = %d, want ~127", c.R)
	}
}

func TestAtClamps(t *testing.T) {
	v, _ := Lookup("viridis")
	if v.At(-3) != v.At(0) {
		t.Error("At(-3) != At(0)")
	}
	if v.At(42) != v.At(1) {
		t.Error("At(42) != At(1)")
	}
}

func TestAtNaNTransparent(t *testing.T) {
	v, _ := Lookup("terrain")
	if c := v.At(math.NaN()); c.A != 0 {
		t.Errorf("At(NaN) alpha = %d, want 0", c.A)
	}
}

func TestAtMonotoneGray(t *testing.T) {
	g, _ := Lookup("gray")
	prev := -1
	for i := 0; i <= 100; i++ {
		c := g.At(float64(i) / 100)
		if int(c.R) < prev {
			t.Fatalf("gray ramp not monotone at %d", i)
		}
		prev = int(c.R)
	}
}

func TestAtAlwaysOpaqueForFiniteProperty(t *testing.T) {
	for _, name := range Names() {
		m, _ := Lookup(name)
		f := func(t01 float64) bool {
			if math.IsNaN(t01) || math.IsInf(t01, 0) {
				return true
			}
			return m.At(t01).A == 255
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRangeNormalize(t *testing.T) {
	r := Range{10, 20}
	cases := []struct{ in, want float64 }{
		{10, 0}, {20, 1}, {15, 0.5}, {5, 0}, {25, 1},
	}
	for _, c := range cases {
		if got := r.Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if !math.IsNaN(r.Normalize(math.NaN())) {
		t.Error("Normalize(NaN) should be NaN")
	}
}

func TestRangeDegenerate(t *testing.T) {
	r := Range{5, 5}
	if got := r.Normalize(5); got != 0.5 {
		t.Errorf("degenerate Normalize = %v, want 0.5", got)
	}
	r = Range{10, 2}
	if got := r.Normalize(6); got != 0.5 {
		t.Errorf("inverted Normalize = %v, want 0.5", got)
	}
}

func TestDynamicRange(t *testing.T) {
	r := DynamicRange([]float32{3, float32(math.NaN()), -2, 7, float32(math.Inf(1))})
	if r.Min != -2 || r.Max != 7 {
		t.Errorf("DynamicRange = %+v, want {-2 7}", r)
	}
}

func TestDynamicRangeNoFinite(t *testing.T) {
	r := DynamicRange([]float32{float32(math.NaN())})
	if r.Min != 0 || r.Max != 1 {
		t.Errorf("DynamicRange with no finite values = %+v, want {0 1}", r)
	}
}

func BenchmarkViridisAt(b *testing.B) {
	v, _ := Lookup("viridis")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = v.At(float64(i%1000) / 1000)
	}
}
