// Package colormap provides the color palettes offered by the NSDF
// dashboard ("users can select from various color palettes, improving the
// interpretability of complex datasets") together with manual and dynamic
// range mapping of scalar fields to colors.
package colormap

import (
	"fmt"
	"image/color"
	"math"
	"sort"
	"sync"
)

// Map converts a normalized scalar t in [0,1] to an opaque RGBA color.
type Map interface {
	// Name returns the palette's identifier, as shown in the dashboard
	// dropdown.
	Name() string
	// At returns the color for normalized position t; t is clamped to [0,1].
	At(t float64) color.RGBA
}

// Range maps raw field values to the normalized [0,1] domain of a Map.
// The dashboard supports manual ranges and dynamic (data-driven) ranges.
type Range struct {
	// Min and Max bound the mapped interval. Values outside are clamped.
	Min, Max float64
}

// Normalize maps v into [0,1] under the range. A degenerate range maps
// everything to 0.5. NaN maps to NaN (callers render it transparent).
func (r Range) Normalize(v float64) float64 {
	if math.IsNaN(v) {
		return math.NaN()
	}
	if r.Max <= r.Min {
		return 0.5
	}
	t := (v - r.Min) / (r.Max - r.Min)
	if t < 0 {
		return 0
	}
	if t > 1 {
		return 1
	}
	return t
}

// DynamicRange computes a Range from the finite values of a field,
// implementing the dashboard's "set dynamically" colormap option.
func DynamicRange(values []float32) Range {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			continue
		}
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if lo > hi { // no finite values
		return Range{0, 1}
	}
	return Range{lo, hi}
}

// stops is a piecewise-linear palette defined by sorted control points.
type stops struct {
	name string
	pos  []float64
	cols []color.RGBA
}

func (s *stops) Name() string { return s.name }

func (s *stops) At(t float64) color.RGBA {
	if math.IsNaN(t) {
		return color.RGBA{0, 0, 0, 0}
	}
	if t <= s.pos[0] {
		return s.cols[0]
	}
	last := len(s.pos) - 1
	if t >= s.pos[last] {
		return s.cols[last]
	}
	i := sort.SearchFloat64s(s.pos, t)
	// s.pos[i-1] < t <= s.pos[i]
	a, b := s.cols[i-1], s.cols[i]
	f := (t - s.pos[i-1]) / (s.pos[i] - s.pos[i-1])
	lerp := func(x, y uint8) uint8 {
		return uint8(math.Round(float64(x) + f*(float64(y)-float64(x))))
	}
	return color.RGBA{lerp(a.R, b.R), lerp(a.G, b.G), lerp(a.B, b.B), 255}
}

func evenStops(name string, cols []color.RGBA) *stops {
	pos := make([]float64, len(cols))
	for i := range pos {
		pos[i] = float64(i) / float64(len(cols)-1)
	}
	return &stops{name: name, pos: pos, cols: cols}
}

var (
	palettesMu sync.RWMutex
	palettes   = map[string]Map{}
)

// Register adds a palette to the global registry. Duplicate names panic.
func Register(m Map) {
	palettesMu.Lock()
	defer palettesMu.Unlock()
	if _, dup := palettes[m.Name()]; dup {
		panic(fmt.Sprintf("colormap: palette %q registered twice", m.Name()))
	}
	palettes[m.Name()] = m
}

// Lookup returns the palette registered under name.
func Lookup(name string) (Map, error) {
	palettesMu.RLock()
	defer palettesMu.RUnlock()
	m, ok := palettes[name]
	if !ok {
		return nil, fmt.Errorf("colormap: unknown palette %q", name)
	}
	return m, nil
}

// Names returns the sorted names of all registered palettes.
func Names() []string {
	palettesMu.RLock()
	defer palettesMu.RUnlock()
	out := make([]string, 0, len(palettes))
	for n := range palettes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	// Viridis: perceptually uniform, the default scientific palette.
	Register(evenStops("viridis", []color.RGBA{
		{68, 1, 84, 255}, {72, 40, 120, 255}, {62, 74, 137, 255},
		{49, 104, 142, 255}, {38, 130, 142, 255}, {31, 158, 137, 255},
		{53, 183, 121, 255}, {109, 205, 89, 255}, {180, 222, 44, 255},
		{253, 231, 37, 255},
	}))
	// Terrain: hypsometric tints for elevation rasters.
	Register(evenStops("terrain", []color.RGBA{
		{40, 94, 168, 255}, {51, 153, 102, 255}, {134, 184, 93, 255},
		{222, 214, 137, 255}, {178, 132, 84, 255}, {140, 100, 80, 255},
		{220, 220, 220, 255}, {255, 255, 255, 255},
	}))
	// Gray: neutral ramp for hillshade.
	Register(evenStops("gray", []color.RGBA{
		{0, 0, 0, 255}, {255, 255, 255, 255},
	}))
	// Plasma-like warm ramp.
	Register(evenStops("plasma", []color.RGBA{
		{13, 8, 135, 255}, {84, 2, 163, 255}, {139, 10, 165, 255},
		{185, 50, 137, 255}, {219, 92, 104, 255}, {244, 136, 73, 255},
		{254, 188, 43, 255}, {240, 249, 33, 255},
	}))
	// Moisture: dry-to-wet ramp for SOMOSPIE soil moisture maps.
	Register(evenStops("moisture", []color.RGBA{
		{165, 42, 42, 255}, {222, 184, 135, 255}, {240, 230, 140, 255},
		{144, 238, 144, 255}, {64, 164, 223, 255}, {8, 48, 107, 255},
	}))
}
