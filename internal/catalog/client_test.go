package catalog

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
)

func newClientFixture(t *testing.T) (*Client, *Catalog) {
	t.Helper()
	cat := New()
	srv := httptest.NewServer(NewServer(cat))
	t.Cleanup(srv.Close)
	return NewClient(srv.URL), cat
}

func TestClientAddAndSearch(t *testing.T) {
	ctx := context.Background()
	c, cat := newClientFixture(t)
	added, err := c.Add(ctx, sampleRecords()...)
	if err != nil || added != 4 {
		t.Fatalf("Add: %d, %v", added, err)
	}
	if cat.Len() != 4 {
		t.Fatalf("server holds %d records", cat.Len())
	}
	results, err := c.Search(ctx, Query{Terms: "elevation", Source: "dataverse"})
	if err != nil || len(results) != 1 {
		t.Fatalf("Search: %d, %v", len(results), err)
	}
	if results[0].Source != "dataverse" {
		t.Errorf("result %+v", results[0])
	}
}

func TestClientGet(t *testing.T) {
	ctx := context.Background()
	c, _ := newClientFixture(t)
	if _, err := c.Add(ctx, Record{ID: "r1", Name: "obj"}); err != nil {
		t.Fatal(err)
	}
	rec, ok, err := c.Get(ctx, "r1")
	if err != nil || !ok || rec.Name != "obj" {
		t.Fatalf("Get: %+v, %v, %v", rec, ok, err)
	}
	_, ok, err = c.Get(ctx, "missing")
	if err != nil || ok {
		t.Fatalf("missing Get: %v, %v", ok, err)
	}
}

func TestClientStats(t *testing.T) {
	ctx := context.Background()
	c, _ := newClientFixture(t)
	c.Add(ctx, sampleRecords()...)
	stats, err := c.Stats(ctx)
	if err != nil || stats.Records != 4 {
		t.Fatalf("Stats: %+v, %v", stats, err)
	}
}

func TestClientDuplicateIDSurfaced(t *testing.T) {
	ctx := context.Background()
	c, _ := newClientFixture(t)
	if _, err := c.Add(ctx, Record{ID: "dup", Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Add(ctx, Record{ID: "dup", Name: "b"}); err == nil {
		t.Error("duplicate ID accepted over HTTP")
	}
}

func TestClientAgainstDeadServer(t *testing.T) {
	c := NewClient("http://127.0.0.1:1") // nothing listens here
	if _, err := c.Search(context.Background(), Query{Terms: "x"}); err == nil {
		t.Error("dead server search succeeded")
	}
}

func TestSaveLoadStore(t *testing.T) {
	ctx := context.Background()
	cat := New()
	cat.Add(sampleRecords()...)
	store := newMemObjectStore()
	if err := cat.SaveToStore(ctx, store, "catalog/snapshot.jsonl"); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFromStore(ctx, store, "catalog/snapshot.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != cat.Len() {
		t.Fatalf("restored %d records, want %d", back.Len(), cat.Len())
	}
	if res := back.Search(Query{Terms: "elevation"}); len(res) != 2 {
		t.Errorf("restored search: %d", len(res))
	}
	if _, err := LoadFromStore(ctx, store, "missing"); err == nil {
		t.Error("missing snapshot loaded")
	}
}

// memObjectStore is a minimal ObjectStore for persistence tests (the
// storage package's stores satisfy the same interface; it is not imported
// here to keep the catalog package dependency-free).
type memObjectStore struct{ m map[string][]byte }

func newMemObjectStore() *memObjectStore { return &memObjectStore{m: map[string][]byte{}} }

func (s *memObjectStore) Put(_ context.Context, key string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.m[key] = cp
	return nil
}

func (s *memObjectStore) Get(_ context.Context, key string) ([]byte, error) {
	data, ok := s.m[key]
	if !ok {
		return nil, fmt.Errorf("no object %q", key)
	}
	return data, nil
}
