package catalog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func sampleRecords() []Record {
	return []Record{
		{Name: "tennessee_elevation_30m.tif", Source: "dataverse", Type: "tiff", Size: 1 << 20, Location: "doi:10.1/a/elev.tif", Keywords: []string{"terrain", "elevation", "tennessee"}},
		{Name: "tennessee_slope_30m.tif", Source: "dataverse", Type: "tiff", Size: 1 << 20, Location: "doi:10.1/a/slope.tif", Keywords: []string{"terrain", "slope"}},
		{Name: "conus_elevation_30m.idx", Source: "sealstorage", Type: "idx", Size: 5 << 20, Location: "seal://conus/elev", Keywords: []string{"terrain", "elevation", "conus"}},
		{Name: "soil_moisture_2016.nc", Source: "dataverse", Type: "netcdf", Size: 3 << 20, Location: "doi:10.1/b/sm.nc", Keywords: []string{"soil", "moisture", "esa", "cci"}},
	}
}

func loaded(t *testing.T) *Catalog {
	t.Helper()
	c := New()
	if n, err := c.Add(sampleRecords()...); err != nil || n != 4 {
		t.Fatalf("Add: %d, %v", n, err)
	}
	return c
}

func TestAddAssignsIDs(t *testing.T) {
	c := loaded(t)
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	res := c.Search(Query{})
	seen := map[string]bool{}
	for _, r := range res {
		if r.ID == "" {
			t.Error("record without ID")
		}
		if seen[r.ID] {
			t.Errorf("duplicate ID %s", r.ID)
		}
		seen[r.ID] = true
		if r.Added.IsZero() {
			t.Error("record without Added time")
		}
	}
}

func TestAddRejectsDuplicatesAndEmpty(t *testing.T) {
	c := New()
	if _, err := c.Add(Record{ID: "x", Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Add(Record{ID: "x", Name: "b"}); err == nil {
		t.Error("duplicate ID accepted")
	}
	if _, err := c.Add(Record{Name: ""}); err == nil {
		t.Error("nameless record accepted")
	}
}

func TestGet(t *testing.T) {
	c := New()
	c.Add(Record{ID: "r1", Name: "thing"})
	if rec, ok := c.Get("r1"); !ok || rec.Name != "thing" {
		t.Errorf("Get = %+v, %v", rec, ok)
	}
	if _, ok := c.Get("missing"); ok {
		t.Error("missing ID found")
	}
}

func TestSearchSingleTerm(t *testing.T) {
	c := loaded(t)
	res := c.Search(Query{Terms: "elevation"})
	if len(res) != 2 {
		t.Fatalf("elevation matched %d records", len(res))
	}
}

func TestSearchANDSemantics(t *testing.T) {
	c := loaded(t)
	res := c.Search(Query{Terms: "elevation conus"})
	if len(res) != 1 || !strings.Contains(res[0].Name, "conus") {
		t.Fatalf("AND search: %+v", res)
	}
	if res := c.Search(Query{Terms: "elevation moisture"}); len(res) != 0 {
		t.Errorf("disjoint AND matched %d", len(res))
	}
}

func TestSearchUnknownTerm(t *testing.T) {
	c := loaded(t)
	if res := c.Search(Query{Terms: "zzznope"}); len(res) != 0 {
		t.Errorf("unknown term matched %d", len(res))
	}
}

func TestSearchCaseInsensitiveAndTokenized(t *testing.T) {
	c := loaded(t)
	if res := c.Search(Query{Terms: "TENNESSEE"}); len(res) != 2 {
		t.Errorf("case-insensitive: %d", len(res))
	}
	// "30m" appears inside file names split on '_' and '.'.
	if res := c.Search(Query{Terms: "30m"}); len(res) != 3 {
		t.Errorf("token split: %d", len(res))
	}
}

func TestSearchFacets(t *testing.T) {
	c := loaded(t)
	if res := c.Search(Query{Source: "dataverse"}); len(res) != 3 {
		t.Errorf("source facet: %d", len(res))
	}
	if res := c.Search(Query{Type: "idx"}); len(res) != 1 {
		t.Errorf("type facet: %d", len(res))
	}
	if res := c.Search(Query{Terms: "terrain", Source: "sealstorage"}); len(res) != 1 {
		t.Errorf("terms+facet: %d", len(res))
	}
}

func TestSearchNamePrefix(t *testing.T) {
	c := loaded(t)
	if res := c.Search(Query{NamePrefix: "tennessee_"}); len(res) != 2 {
		t.Errorf("prefix: %d", len(res))
	}
}

func TestSearchLimit(t *testing.T) {
	c := loaded(t)
	if res := c.Search(Query{Limit: 2}); len(res) != 2 {
		t.Errorf("limit: %d", len(res))
	}
}

func TestStats(t *testing.T) {
	c := loaded(t)
	s := c.Stats()
	if s.Records != 4 {
		t.Errorf("Records = %d", s.Records)
	}
	if s.BySource["dataverse"] != 3 || s.BySource["sealstorage"] != 1 {
		t.Errorf("BySource = %v", s.BySource)
	}
	if s.ByType["tiff"] != 2 {
		t.Errorf("ByType = %v", s.ByType)
	}
	if s.TotalBytes != (1<<20)+(1<<20)+(5<<20)+(3<<20) {
		t.Errorf("TotalBytes = %d", s.TotalBytes)
	}
	if s.Tokens == 0 {
		t.Error("no tokens indexed")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c := loaded(t)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != c.Len() {
		t.Fatalf("loaded %d records, want %d", c2.Len(), c.Len())
	}
	// Search behaviour must survive the round trip.
	if res := c2.Search(Query{Terms: "elevation conus"}); len(res) != 1 {
		t.Errorf("loaded catalog search: %d", len(res))
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestTokenize(t *testing.T) {
	got := tokenize("Tennessee_Elevation-30m.TIF")
	want := []string{"tennessee", "elevation", "30m", "tif"}
	if len(got) != len(want) {
		t.Fatalf("tokenize = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
	if toks := tokenize(""); len(toks) != 0 {
		t.Errorf("empty tokenize = %v", toks)
	}
}

func TestIntersectSorted(t *testing.T) {
	cases := []struct{ a, b, want []int }{
		{[]int{1, 2, 3}, []int{2, 3, 4}, []int{2, 3}},
		{[]int{1}, []int{2}, nil},
		{nil, []int{1}, nil},
		{[]int{5, 9}, []int{5, 9}, []int{5, 9}},
	}
	for _, c := range cases {
		got := intersectSorted(c.a, c.b)
		if len(got) != len(c.want) {
			t.Errorf("intersect(%v,%v) = %v", c.a, c.b, got)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("intersect(%v,%v) = %v", c.a, c.b, got)
			}
		}
	}
}

func TestEverySearchResultContainsAllTermsProperty(t *testing.T) {
	c := New()
	// Synthesise a corpus with overlapping keyword sets.
	words := []string{"terrain", "soil", "moisture", "conus", "tennessee", "idx", "tiff"}
	for i := 0; i < 200; i++ {
		var kws []string
		for j, w := range words {
			if (i>>j)&1 == 1 {
				kws = append(kws, w)
			}
		}
		c.Add(Record{Name: fmt.Sprintf("obj%03d", i), Source: "synthetic", Type: "bin", Keywords: kws})
	}
	f := func(mask uint8) bool {
		var terms []string
		for j := 0; j < 3; j++ {
			if (mask>>j)&1 == 1 {
				terms = append(terms, words[j])
			}
		}
		if len(terms) == 0 {
			return true
		}
		res := c.Search(Query{Terms: strings.Join(terms, " "), Limit: 1000})
		for _, r := range res {
			have := map[string]bool{}
			for _, tok := range recordTokens(&r) {
				have[tok] = true
			}
			for _, term := range terms {
				if !have[term] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAddSearch(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Add(Record{Name: fmt.Sprintf("w%d-obj%d terrain", w, i), Source: "s", Type: "t"})
				c.Search(Query{Terms: "terrain"})
			}
		}(w)
	}
	wg.Wait()
	if c.Len() != 400 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestHTTPAPI(t *testing.T) {
	srv := httptest.NewServer(NewServer(New()))
	defer srv.Close()

	// Ingest.
	body, _ := json.Marshal(sampleRecords())
	resp, err := http.Post(srv.URL+"/records", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("ingest status %s", resp.Status)
	}
	var addResult map[string]int
	json.NewDecoder(resp.Body).Decode(&addResult)
	resp.Body.Close()
	if addResult["added"] != 4 {
		t.Fatalf("added = %d", addResult["added"])
	}

	// Search.
	resp, err = http.Get(srv.URL + "/search?q=elevation&source=dataverse")
	if err != nil {
		t.Fatal(err)
	}
	var results []Record
	json.NewDecoder(resp.Body).Decode(&results)
	resp.Body.Close()
	if len(results) != 1 {
		t.Fatalf("search returned %d", len(results))
	}

	// Get by ID.
	resp, err = http.Get(srv.URL + "/records/" + results[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get status %s", resp.Status)
	}
	resp.Body.Close()

	// Stats.
	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if stats.Records != 4 {
		t.Fatalf("stats records = %d", stats.Records)
	}

	// Bad requests.
	resp, _ = http.Post(srv.URL+"/records", "application/json", strings.NewReader("nope"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage ingest status %s", resp.Status)
	}
	resp.Body.Close()
	resp, _ = http.Get(srv.URL + "/search?limit=-2")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad limit status %s", resp.Status)
	}
	resp.Body.Close()
	resp, _ = http.Get(srv.URL + "/records/unknown-id")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown record status %s", resp.Status)
	}
	resp.Body.Close()
}

func BenchmarkIngest(b *testing.B) {
	c := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(Record{
			Name:     fmt.Sprintf("object_%d_30m.tif", i),
			Source:   "dataverse",
			Type:     "tiff",
			Size:     1 << 20,
			Keywords: []string{"terrain", "elevation"},
		})
	}
}

func BenchmarkSearchLargeCatalog(b *testing.B) {
	c := New()
	sources := []string{"dataverse", "sealstorage", "materialscommons"}
	for i := 0; i < 100000; i++ {
		c.Add(Record{
			Name:     fmt.Sprintf("object_%06d.tif", i),
			Source:   sources[i%3],
			Type:     "tiff",
			Keywords: []string{"terrain", fmt.Sprintf("region%d", i%50)},
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Search(Query{Terms: fmt.Sprintf("terrain region%d", i%50), Limit: 20})
	}
}
