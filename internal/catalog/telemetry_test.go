package catalog

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"nsdfgo/internal/telemetry"
)

func TestServerTelemetry(t *testing.T) {
	cat := New()
	if _, err := cat.Add(Record{ID: "r1", Name: "dem.tif", Source: "dataverse", Type: "tiff", Size: 42}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(cat)
	reg := telemetry.NewRegistry()
	srv.EnableTelemetry(reg)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	get("/healthz")
	get("/healthz")
	get("/records/r1")
	get("/search?q=dem")
	if code := get("/records/absent"); code != http.StatusNotFound {
		t.Fatalf("GET missing record = %d, want 404", code)
	}
	get("/totally/unknown")

	cases := []struct {
		route, class string
		want         int64
	}{
		{"/healthz", "2xx", 2},
		{"/records/{id}", "2xx", 1},
		{"/records/{id}", "4xx", 1},
		{"/search", "2xx", 1},
		{"other", "4xx", 1},
	}
	for _, c := range cases {
		got := reg.Counter("nsdf_http_requests_total",
			"service", "catalog", "route", c.route, "class", c.class).Value()
		if got != c.want {
			t.Errorf("requests{route=%q,class=%q} = %d, want %d", c.route, c.class, got, c.want)
		}
	}
	if snap := reg.Histogram("nsdf_http_request_seconds", "service", "catalog").Snapshot(); snap.Count != 6 {
		t.Errorf("latency observations = %d, want 6", snap.Count)
	}

	// /metrics serves the exposition and is not itself counted.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`nsdf_http_requests_total{class="2xx",route="/healthz",service="catalog"} 2`,
		"nsdf_http_request_seconds_bucket",
		`nsdf_http_request_seconds{service="catalog",quantile="0.95"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if got := reg.Counter("nsdf_http_requests_total",
		"service", "catalog", "route", "other", "class", "4xx").Value(); got != 1 {
		t.Errorf("scraping /metrics changed request counters: other/4xx = %d", got)
	}

	// Without telemetry the server still routes.
	plain := httptest.NewServer(NewServer(cat))
	defer plain.Close()
	resp, err = http.Get(plain.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("plain server /healthz = %d", resp.StatusCode)
	}
}
