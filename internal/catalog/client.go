package catalog

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client talks to a catalog Server over HTTP, mirroring the Catalog's
// Add/Get/Search/Stats API so tools work identically against a local or
// remote catalog.
type Client struct {
	base string
	http *http.Client
}

// NewClient connects to a catalog service at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{
		base: strings.TrimRight(baseURL, "/"),
		http: &http.Client{Timeout: 30 * time.Second},
	}
}

// Add ingests records remotely and returns the number added.
func (c *Client) Add(ctx context.Context, records ...Record) (int, error) {
	body, err := json.Marshal(records)
	if err != nil {
		return 0, fmt.Errorf("catalog: client: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/records", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, fmt.Errorf("catalog: client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return 0, fmt.Errorf("catalog: client: ingest status %s", resp.Status)
	}
	var out map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, fmt.Errorf("catalog: client: %w", err)
	}
	return out["added"], nil
}

// Get fetches one record by id.
func (c *Client) Get(ctx context.Context, id string) (Record, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/records/"+url.PathEscape(id), nil)
	if err != nil {
		return Record{}, false, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return Record{}, false, fmt.Errorf("catalog: client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return Record{}, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return Record{}, false, fmt.Errorf("catalog: client: get status %s", resp.Status)
	}
	var rec Record
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		return Record{}, false, fmt.Errorf("catalog: client: %w", err)
	}
	return rec, true, nil
}

// Search runs a remote query.
func (c *Client) Search(ctx context.Context, q Query) ([]Record, error) {
	qv := url.Values{}
	if q.Terms != "" {
		qv.Set("q", q.Terms)
	}
	if q.Source != "" {
		qv.Set("source", q.Source)
	}
	if q.Type != "" {
		qv.Set("type", q.Type)
	}
	if q.NamePrefix != "" {
		qv.Set("prefix", q.NamePrefix)
	}
	if q.Limit > 0 {
		qv.Set("limit", strconv.Itoa(q.Limit))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/search?"+qv.Encode(), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("catalog: client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("catalog: client: search status %s", resp.Status)
	}
	var out []Record
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("catalog: client: %w", err)
	}
	return out, nil
}

// Stats fetches the remote catalog summary.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/stats", nil)
	if err != nil {
		return Stats{}, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return Stats{}, fmt.Errorf("catalog: client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Stats{}, fmt.Errorf("catalog: client: stats status %s", resp.Status)
	}
	var out Stats
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return Stats{}, fmt.Errorf("catalog: client: %w", err)
	}
	return out, nil
}
