// Package catalog reimplements the NSDF-Catalog service (Luettgau et al.,
// UCC 2022): a lightweight indexing service that registers descriptive
// records for scientific data objects scattered across repositories and
// lets users discover them with term queries. The production deployment
// indexes over 1.59 billion records; this implementation provides the
// same record model, bulk ingest, inverted-index term search, prefix
// search, facet filters, persistence, and an HTTP API, at laptop scale.
package catalog

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Record describes one catalogued data object.
type Record struct {
	// ID is the unique record identifier (assigned on ingest when empty).
	ID string `json:"id"`
	// Name is the object's human-readable name, e.g. a file name.
	Name string `json:"name"`
	// Source names the hosting repository ("dataverse", "sealstorage",
	// "materialscommons", ...).
	Source string `json:"source"`
	// Type is the object's data type ("tiff", "idx", "netcdf", ...).
	Type string `json:"type"`
	// Size is the payload size in bytes.
	Size int64 `json:"size"`
	// Checksum is a content hash for integrity checks.
	Checksum string `json:"checksum,omitempty"`
	// Location is where the object can be fetched (URL or store key).
	Location string `json:"location"`
	// Keywords carry free-text discovery terms.
	Keywords []string `json:"keywords,omitempty"`
	// Added is the ingest time.
	Added time.Time `json:"added"`
}

// Catalog is an in-memory record index. It is safe for concurrent use.
type Catalog struct {
	mu      sync.RWMutex
	records []Record
	byID    map[string]int
	// inverted maps a token to the sorted indices of records containing it.
	inverted map[string][]int
	// bySource and byType are facet counters.
	bySource map[string]int
	byType   map[string]int
	nextID   int
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		byID:     make(map[string]int),
		inverted: make(map[string][]int),
		bySource: make(map[string]int),
		byType:   make(map[string]int),
	}
}

// tokenize lowercases and splits text on non-alphanumeric boundaries.
func tokenize(text string) []string {
	var out []string
	var sb strings.Builder
	flush := func() {
		if sb.Len() > 0 {
			out = append(out, sb.String())
			sb.Reset()
		}
	}
	for _, c := range strings.ToLower(text) {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			sb.WriteRune(c)
		default:
			flush()
		}
	}
	flush()
	return out
}

// recordTokens returns the searchable tokens of a record.
func recordTokens(r *Record) []string {
	fields := []string{r.Name, r.Source, r.Type}
	fields = append(fields, r.Keywords...)
	seen := map[string]bool{}
	var out []string
	for _, f := range fields {
		for _, tok := range tokenize(f) {
			if !seen[tok] {
				seen[tok] = true
				out = append(out, tok)
			}
		}
	}
	return out
}

// Add ingests records, assigning IDs where absent, and returns the number
// added. Records whose ID already exists are rejected with an error after
// any earlier records in the batch were ingested.
func (c *Catalog) Add(records ...Record) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	added := 0
	for _, r := range records {
		if r.Name == "" {
			return added, fmt.Errorf("catalog: record needs a name")
		}
		if r.ID == "" {
			c.nextID++
			r.ID = fmt.Sprintf("nsdf-%09d", c.nextID)
		}
		if _, dup := c.byID[r.ID]; dup {
			return added, fmt.Errorf("catalog: duplicate record id %q", r.ID)
		}
		if r.Added.IsZero() {
			r.Added = time.Now()
		}
		idx := len(c.records)
		c.records = append(c.records, r)
		c.byID[r.ID] = idx
		for _, tok := range recordTokens(&r) {
			c.inverted[tok] = append(c.inverted[tok], idx)
		}
		c.bySource[strings.ToLower(r.Source)]++
		c.byType[strings.ToLower(r.Type)]++
		added++
	}
	return added, nil
}

// Get returns the record with the given ID.
func (c *Catalog) Get(id string) (Record, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	idx, ok := c.byID[id]
	if !ok {
		return Record{}, false
	}
	return c.records[idx], true
}

// Len returns the number of records.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.records)
}

// Query is a catalog search request.
type Query struct {
	// Terms are ANDed full-text terms (tokenized like record fields).
	Terms string
	// Source, when non-empty, restricts to one repository.
	Source string
	// Type, when non-empty, restricts to one data type.
	Type string
	// NamePrefix, when non-empty, restricts to names with the prefix
	// (case-insensitive).
	NamePrefix string
	// Limit bounds the result count; 0 means 100.
	Limit int
}

// Search evaluates a query. Results are sorted by record ID.
func (c *Catalog) Search(q Query) []Record {
	limit := q.Limit
	if limit <= 0 {
		limit = 100
	}
	c.mu.RLock()
	defer c.mu.RUnlock()

	terms := tokenize(q.Terms)
	var candidates []int
	if len(terms) > 0 {
		// Intersect posting lists, shortest first.
		lists := make([][]int, 0, len(terms))
		for _, term := range terms {
			list, ok := c.inverted[term]
			if !ok {
				return nil
			}
			lists = append(lists, list)
		}
		sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
		candidates = lists[0]
		for _, list := range lists[1:] {
			candidates = intersectSorted(candidates, list)
			if len(candidates) == 0 {
				return nil
			}
		}
	} else {
		candidates = make([]int, len(c.records))
		for i := range candidates {
			candidates[i] = i
		}
	}

	prefix := strings.ToLower(q.NamePrefix)
	source := strings.ToLower(q.Source)
	typ := strings.ToLower(q.Type)
	var out []Record
	for _, idx := range candidates {
		r := &c.records[idx]
		if source != "" && strings.ToLower(r.Source) != source {
			continue
		}
		if typ != "" && strings.ToLower(r.Type) != typ {
			continue
		}
		if prefix != "" && !strings.HasPrefix(strings.ToLower(r.Name), prefix) {
			continue
		}
		out = append(out, *r)
		if len(out) >= limit {
			break
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// intersectSorted intersects two ascending int slices.
func intersectSorted(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Stats summarises the catalog for the service's landing page.
type Stats struct {
	// Records is the total record count.
	Records int `json:"records"`
	// Tokens is the inverted-index vocabulary size.
	Tokens int `json:"tokens"`
	// TotalBytes sums the catalogued object sizes.
	TotalBytes int64 `json:"total_bytes"`
	// BySource and ByType are facet counts.
	BySource map[string]int `json:"by_source"`
	ByType   map[string]int `json:"by_type"`
}

// Stats computes the summary.
func (c *Catalog) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s := Stats{
		Records:  len(c.records),
		Tokens:   len(c.inverted),
		BySource: make(map[string]int, len(c.bySource)),
		ByType:   make(map[string]int, len(c.byType)),
	}
	for k, v := range c.bySource {
		s.BySource[k] = v
	}
	for k, v := range c.byType {
		s.ByType[k] = v
	}
	for i := range c.records {
		s.TotalBytes += c.records[i].Size
	}
	return s
}

// Save writes the catalog as JSON lines, one record per line.
func (c *Catalog) Save(w io.Writer) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range c.records {
		if err := enc.Encode(&c.records[i]); err != nil {
			return fmt.Errorf("catalog: save record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Load reads JSON-lines records written by Save into a fresh catalog.
func Load(r io.Reader) (*Catalog, error) {
	c := New()
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("catalog: load: %w", err)
		}
		if _, err := c.Add(rec); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Snapshot serialises the catalog to bytes (Save into a buffer).
func (c *Catalog) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ObjectStore is the subset of the storage.Store interface the catalog
// needs for persistence (declared locally to keep the import graph
// acyclic; storage.Store satisfies it).
type ObjectStore interface {
	Put(ctx context.Context, key string, data []byte) error
	Get(ctx context.Context, key string) ([]byte, error)
}

// SaveToStore persists the catalog as one JSON-lines object, so the
// index itself lives on the same durable fabric as the data it describes.
func (c *Catalog) SaveToStore(ctx context.Context, store ObjectStore, key string) error {
	data, err := c.Snapshot()
	if err != nil {
		return err
	}
	return store.Put(ctx, key, data)
}

// LoadFromStore restores a catalog persisted with SaveToStore.
func LoadFromStore(ctx context.Context, store ObjectStore, key string) (*Catalog, error) {
	data, err := store.Get(ctx, key)
	if err != nil {
		return nil, fmt.Errorf("catalog: load from store: %w", err)
	}
	return Load(bytes.NewReader(data))
}
