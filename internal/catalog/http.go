package catalog

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// Server exposes a Catalog over HTTP:
//
//	POST /records           ingest a JSON array of records
//	GET  /records/<id>      fetch one record
//	GET  /search?q=&source=&type=&prefix=&limit=
//	GET  /stats             catalog summary
//	GET  /healthz           liveness probe
type Server struct {
	cat *Catalog
}

// NewServer wraps a catalog for HTTP serving.
func NewServer(cat *Catalog) *Server { return &Server{cat: cat} }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/healthz":
		fmt.Fprintln(w, "ok")
	case r.URL.Path == "/records" && r.Method == http.MethodPost:
		s.handleIngest(w, r)
	case len(r.URL.Path) > len("/records/") && r.URL.Path[:9] == "/records/" && r.Method == http.MethodGet:
		s.handleGet(w, r, r.URL.Path[9:])
	case r.URL.Path == "/search" && r.Method == http.MethodGet:
		s.handleSearch(w, r)
	case r.URL.Path == "/stats" && r.Method == http.MethodGet:
		writeJSON(w, s.cat.Stats())
	default:
		http.NotFound(w, r)
	}
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var records []Record
	if err := json.NewDecoder(r.Body).Decode(&records); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	added, err := s.cat.Add(records...)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, map[string]int{"added": added})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request, id string) {
	rec, ok := s.cat.Get(id)
	if !ok {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, rec)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	qv := r.URL.Query()
	limit := 0
	if ls := qv.Get("limit"); ls != "" {
		v, err := strconv.Atoi(ls)
		if err != nil || v < 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = v
	}
	results := s.cat.Search(Query{
		Terms:      qv.Get("q"),
		Source:     qv.Get("source"),
		Type:       qv.Get("type"),
		NamePrefix: qv.Get("prefix"),
		Limit:      limit,
	})
	if results == nil {
		results = []Record{}
	}
	writeJSON(w, results)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
