package catalog

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"nsdfgo/internal/telemetry"
)

// Server exposes a Catalog over HTTP:
//
//	POST /records           ingest a JSON array of records
//	GET  /records/<id>      fetch one record
//	GET  /search?q=&source=&type=&prefix=&limit=
//	GET  /stats             catalog summary
//	GET  /healthz           liveness probe
//	GET  /metrics           telemetry exposition (when enabled)
type Server struct {
	cat *Catalog
	reg *telemetry.Registry
	tel *telemetry.HTTPMetrics
}

// NewServer wraps a catalog for HTTP serving.
func NewServer(cat *Catalog) *Server { return &Server{cat: cat} }

// EnableTelemetry attaches a metrics registry: every request is counted
// under nsdf_http_requests_total{service="catalog",route,class} and timed
// in nsdf_http_request_seconds{service="catalog"}, and the registry's
// exposition is served at /metrics.
func (s *Server) EnableTelemetry(reg *telemetry.Registry) {
	s.reg = reg
	s.tel = telemetry.NewHTTPMetrics(reg, "catalog")
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.tel == nil {
		s.route(w, r)
		return
	}
	if r.URL.Path == "/metrics" {
		s.reg.Handler().ServeHTTP(w, r)
		return
	}
	rec := telemetry.NewStatusRecorder(w)
	start := time.Now()
	s.route(rec, r)
	s.tel.Observe(routeLabel(r), rec.Code, time.Since(start))
}

// routeLabel maps a request to a bounded route name for telemetry.
func routeLabel(r *http.Request) string {
	switch {
	case r.URL.Path == "/healthz":
		return "/healthz"
	case r.URL.Path == "/records":
		return "/records"
	case len(r.URL.Path) > len("/records/") && r.URL.Path[:9] == "/records/":
		return "/records/{id}"
	case r.URL.Path == "/search":
		return "/search"
	case r.URL.Path == "/stats":
		return "/stats"
	}
	return "other"
}

// route dispatches a request to its handler.
func (s *Server) route(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/healthz":
		telemetry.WriteHealth(w, "catalog")
	case r.URL.Path == "/records" && r.Method == http.MethodPost:
		s.handleIngest(w, r)
	case len(r.URL.Path) > len("/records/") && r.URL.Path[:9] == "/records/" && r.Method == http.MethodGet:
		s.handleGet(w, r, r.URL.Path[9:])
	case r.URL.Path == "/search" && r.Method == http.MethodGet:
		s.handleSearch(w, r)
	case r.URL.Path == "/stats" && r.Method == http.MethodGet:
		writeJSON(w, s.cat.Stats())
	default:
		http.NotFound(w, r)
	}
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var records []Record
	if err := json.NewDecoder(r.Body).Decode(&records); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	added, err := s.cat.Add(records...)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, map[string]int{"added": added})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request, id string) {
	rec, ok := s.cat.Get(id)
	if !ok {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, rec)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	qv := r.URL.Query()
	limit := 0
	if ls := qv.Get("limit"); ls != "" {
		v, err := strconv.Atoi(ls)
		if err != nil || v < 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = v
	}
	results := s.cat.Search(Query{
		Terms:      qv.Get("q"),
		Source:     qv.Get("source"),
		Type:       qv.Get("type"),
		NamePrefix: qv.Get("prefix"),
		Limit:      limit,
	})
	if results == nil {
		results = []Record{}
	}
	writeJSON(w, results)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
