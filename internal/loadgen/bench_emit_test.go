package loadgen_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"nsdfgo/internal/admission"
	"nsdfgo/internal/dashboard"
	"nsdfgo/internal/dem"
	"nsdfgo/internal/idx"
	"nsdfgo/internal/loadgen"
	"nsdfgo/internal/query"
	"nsdfgo/internal/telemetry"
)

// This file is the serving-under-load acceptance harness behind
// `make bench-serving` and BENCH_serving.json. It drives two identical
// dashboard stacks over a capacity-limited block backend with the
// loadgen workload at 2x their sustainable throughput: the baseline
// stack admits everything and degrades (queueing delay blows p99 past
// the client's patience, so goodput collapses), while the
// admission-controlled stack sheds the excess as fast 429s and keeps
// admitted p99 and goodput near their uncontended values. A third
// section kills the backend mid-run and requires the load generator to
// complete with only shed/degraded responses — no hangs.

// chokeBackend is an idx.Backend whose block reads contend for a fixed
// number of transfer slots, each costing a fixed service time — the
// capacity model that makes "sustainable throughput" a real number.
// down simulates a killed storage node: block reads fail immediately.
type chokeBackend struct {
	*idx.MemBackend
	slots  chan struct{}
	perGet time.Duration
	armed  atomic.Bool
	down   atomic.Bool
	gets   atomic.Int64
}

func newChokeBackend(slots int, perGet time.Duration) *chokeBackend {
	return &chokeBackend{
		MemBackend: idx.NewMemBackend(),
		slots:      make(chan struct{}, slots),
		perGet:     perGet,
	}
}

func (b *chokeBackend) Get(ctx context.Context, name string) ([]byte, error) {
	if name == idx.MetaObjectName || !b.armed.Load() {
		return b.MemBackend.Get(ctx, name)
	}
	if b.down.Load() {
		return nil, errors.New("choke: node is down")
	}
	b.gets.Add(1)
	select {
	case b.slots <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	t := time.NewTimer(b.perGet)
	select {
	case <-ctx.Done():
		t.Stop()
		<-b.slots
		return nil, ctx.Err()
	case <-t.C:
	}
	<-b.slots
	return b.MemBackend.Get(ctx, name)
}

// servingStack is one dashboard instance over its own choked backend.
type servingStack struct {
	be   *chokeBackend
	ctrl *admission.Controller
	reg  *telemetry.Registry
	srv  *httptest.Server
}

// newServingStack builds a 128x128, 2-field, 2-timestep dataset (one
// block per field/timestep at the default block size, so every request
// costs exactly one choked backend read) served without caching. With
// admit, the admission controller fronts the server and its pressure
// feeds the engine's fetch pool.
func newServingStack(t *testing.T, slots int, perGet time.Duration, admit *admission.Options) *servingStack {
	t.Helper()
	be := newChokeBackend(slots, perGet)
	meta, err := idx.NewMeta([]int{128, 128}, []idx.Field{
		{Name: "elevation", Type: idx.Float32},
		{Name: "hillshade", Type: idx.Float32},
	})
	if err != nil {
		t.Fatal(err)
	}
	meta.Timesteps = 2
	ds, err := idx.Create(context.Background(), be, meta)
	if err != nil {
		t.Fatal(err)
	}
	for fi, f := range []string{"elevation", "hillshade"} {
		for ts := 0; ts < 2; ts++ {
			g := dem.Scale(dem.FBM(128, 128, uint64(100*fi+ts+1), dem.DefaultFBM()), 0, 100)
			if err := ds.WriteGrid(context.Background(), f, ts, g); err != nil {
				t.Fatal(err)
			}
		}
	}
	e := query.New(ds, 0) // caching off: every request pays the backend
	s := dashboard.NewServer()
	s.Register("terrain", e)
	st := &servingStack{be: be, reg: telemetry.NewRegistry()}
	if admit != nil {
		st.ctrl = admission.NewController(*admit)
		st.ctrl.Instrument(st.reg, "dashboard")
		e.SetFetchPressure(st.ctrl.Pressure)
		st.srv = httptest.NewServer(st.ctrl.Middleware(s))
	} else {
		st.srv = httptest.NewServer(s)
	}
	t.Cleanup(st.srv.Close)
	be.armed.Store(true)
	return st
}

// workload is the shared loadgen shape: one dataset, mixed boxes, a
// quarter of streams progressive.
func workload(baseURL string, seed int64) loadgen.Options {
	return loadgen.Options{
		BaseURL:      baseURL,
		Seed:         seed,
		Tenants:      4,
		Progressive:  0.25,
		BoxFractions: []float64{0.1, 0.5, 1.0},
	}
}

func TestBenchServingEmit(t *testing.T) {
	iters, _ := strconv.Atoi(os.Getenv("NSDF_BENCH_SERVING_ITERS"))
	if iters <= 0 {
		t.Skip("set NSDF_BENCH_SERVING_ITERS>=1 to run the serving benchmark emitter")
	}
	smoke := iters == 1
	outPath := os.Getenv("NSDF_BENCH_SERVING_OUT")
	if outPath == "" {
		outPath = t.TempDir() + "/BENCH_serving.json"
	}
	prev := runtime.GOMAXPROCS(8) // results must not depend on the host's core count
	defer runtime.GOMAXPROCS(prev)

	// Capacity model: 4 transfer slots x 10ms per block read = ~400
	// block reads/s. Client patience (timeout) is 300ms: far above the
	// admitted path's latency, far below the baseline's overload queue.
	const slots = 4
	const perGet = 10 * time.Millisecond
	const patience = 300 * time.Millisecond
	// MaxQueue stays shallow on purpose: every queued slot adds its
	// service time to admitted latency, and the p99 gate below allows
	// only one uncontended-p99's worth of queueing delay.
	admitOpts := admission.Options{
		MaxConcurrent: slots,
		MaxQueue:      slots,
		QueueTimeout:  100 * time.Millisecond,
		RetryAfter:    time.Second,
	}
	measure := time.Duration(iters) * time.Second
	if measure > 4*time.Second {
		measure = 4 * time.Second
	}
	if smoke {
		measure = 400 * time.Millisecond
	}
	ctx := context.Background()

	// --- Uncontended latency: one closed-loop client, no competition. ---
	uncontendedStack := newServingStack(t, slots, perGet, nil)
	uo := workload(uncontendedStack.srv.URL, 1)
	uo.Rate = 0
	uo.Concurrency = 1
	uo.Duration = measure
	uncontended, err := loadgen.Run(ctx, uo)
	if err != nil {
		t.Fatal(err)
	}

	// --- Sustainable (peak) throughput: closed loop at the capacity
	// concurrency, same stack (its backend is idle again). ---
	so := workload(uncontendedStack.srv.URL, 2)
	so.Rate = 0
	so.Concurrency = slots
	so.Duration = measure
	sustained, err := loadgen.Run(ctx, so)
	if err != nil {
		t.Fatal(err)
	}
	offered := 2 * sustained.Total.Goodput

	// --- Overload: open loop at 2x sustainable against both stacks. ---
	overload := func(stack *servingStack, seed int64) *loadgen.Report {
		oo := workload(stack.srv.URL, seed)
		oo.Rate = offered
		oo.Concurrency = 256 // client-side in-flight bound, not the bottleneck
		oo.Duration = measure
		oo.Timeout = patience
		rep, err := loadgen.Run(ctx, oo)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	baselineStack := newServingStack(t, slots, perGet, nil)
	baseline := overload(baselineStack, 3)
	admittedStack := newServingStack(t, slots, perGet, &admitOpts)
	admitted := overload(admittedStack, 3)
	shedTotal := admittedStack.reg.Counter("nsdf_admission_shed_total",
		"service", "dashboard", "reason", admission.ReasonQueueFull).Value() +
		admittedStack.reg.Counter("nsdf_admission_shed_total",
			"service", "dashboard", "reason", admission.ReasonQueueTimeout).Value()
	admittedTotal := admittedStack.reg.Counter("nsdf_admission_admitted_total",
		"service", "dashboard").Value()

	// --- Killed node: flip the backend down mid-run; the run must end
	// on time with only shed/degraded responses afterwards. ---
	killStack := newServingStack(t, slots, perGet, &admitOpts)
	ko := workload(killStack.srv.URL, 4)
	ko.Rate = sustained.Total.Goodput
	ko.Concurrency = 64
	ko.Timeout = patience
	ko.Phases = []loadgen.Phase{
		{Name: "healthy", Duration: measure / 2, Rate: 1},
		{Name: "killed", Duration: measure / 2, Rate: 1},
	}
	killTimer := time.AfterFunc(measure/2, func() { killStack.be.down.Store(true) })
	defer killTimer.Stop()
	killStart := time.Now()
	killed, err := loadgen.Run(ctx, ko)
	if err != nil {
		t.Fatal(err)
	}
	killElapsed := time.Since(killStart)
	killBudget := measure + patience + 5*time.Second
	var killedPhase loadgen.PhaseReport
	for _, ph := range killed.Phases {
		if ph.Name == "killed" {
			killedPhase = ph
		}
	}

	doc := struct {
		Description string `json:"description"`
		GOMAXPROCS  int    `json:"gomaxprocs"`
		Iters       int    `json:"iterations"`
		Capacity    struct {
			Slots      int     `json:"transfer_slots"`
			PerGetMs   float64 `json:"per_get_ms"`
			PatienceMs float64 `json:"client_timeout_ms"`
		} `json:"capacity"`
		Admission struct {
			MaxConcurrent  int     `json:"max_concurrent"`
			MaxQueue       int     `json:"max_queue"`
			QueueTimeoutMs float64 `json:"queue_timeout_ms"`
		} `json:"admission"`
		Uncontended loadgen.PhaseReport `json:"uncontended"`
		Sustainable loadgen.PhaseReport `json:"sustainable"`
		Overload    struct {
			OfferedRPS float64             `json:"offered_rps"`
			Baseline   loadgen.PhaseReport `json:"baseline"`
			Admitted   loadgen.PhaseReport `json:"admitted"`
			Shed       int64               `json:"admission_shed_total"`
			AdmittedN  int64               `json:"admission_admitted_total"`
		} `json:"overload_2x"`
		KilledNode struct {
			Healthy     loadgen.PhaseReport `json:"healthy_phase"`
			Killed      loadgen.PhaseReport `json:"killed_phase"`
			ElapsedS    float64             `json:"elapsed_s"`
			BudgetS     float64             `json:"budget_s"`
			CompletedOK bool                `json:"completed_within_budget"`
		} `json:"killed_node"`
	}{
		Description: "Serving under load: uncontended vs sustainable vs 2x-overload latency/goodput with and without admission control (per-tenant token buckets + bounded-concurrency limiter shedding 429s), plus loadgen completion against a killed backend node. Regenerate with `make bench-serving`.",
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Iters:       iters,
	}
	doc.Capacity.Slots = slots
	doc.Capacity.PerGetMs = float64(perGet) / float64(time.Millisecond)
	doc.Capacity.PatienceMs = float64(patience) / float64(time.Millisecond)
	doc.Admission.MaxConcurrent = admitOpts.MaxConcurrent
	doc.Admission.MaxQueue = admitOpts.MaxQueue
	doc.Admission.QueueTimeoutMs = float64(admitOpts.QueueTimeout) / float64(time.Millisecond)
	doc.Uncontended = uncontended.Total
	doc.Sustainable = sustained.Total
	doc.Overload.OfferedRPS = offered
	doc.Overload.Baseline = baseline.Total
	doc.Overload.Admitted = admitted.Total
	doc.Overload.Shed = shedTotal
	doc.Overload.AdmittedN = admittedTotal
	for _, ph := range killed.Phases {
		if ph.Name == "healthy" {
			doc.KilledNode.Healthy = ph
		}
	}
	doc.KilledNode.Killed = killedPhase
	doc.KilledNode.ElapsedS = killElapsed.Seconds()
	doc.KilledNode.BudgetS = killBudget.Seconds()
	doc.KilledNode.CompletedOK = killElapsed < killBudget

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("uncontended p99 %.1fms; sustainable %.1f/s", uncontended.Total.P99ms, sustained.Total.Goodput)
	t.Logf("overload @%.1f/s: baseline p99 %.1fms goodput %.1f/s | admitted p99 %.1fms goodput %.1f/s (%d shed)",
		offered, baseline.Total.P99ms, baseline.Total.Goodput,
		admitted.Total.P99ms, admitted.Total.Goodput, admitted.Total.Shed)
	t.Logf("killed node: run finished in %.1fs (budget %.1fs), killed phase: %d ok / %d shed / %d degraded",
		killElapsed.Seconds(), killBudget.Seconds(),
		killedPhase.OK, killedPhase.Shed, killedPhase.ClientE+killedPhase.ServerE+killedPhase.Failed)
	t.Logf("wrote %s", outPath)

	// Acceptance gates (skipped in smoke mode, where run lengths are too
	// short for stable percentiles).
	if !smoke {
		if admitted.Total.P99ms > 2*uncontended.Total.P99ms {
			t.Errorf("admitted p99 %.1fms exceeds 2x uncontended p99 %.1fms under 2x overload",
				admitted.Total.P99ms, uncontended.Total.P99ms)
		}
		if admitted.Total.Goodput < 0.9*sustained.Total.Goodput {
			t.Errorf("admitted goodput %.1f/s under 2x overload is below 90%% of sustainable %.1f/s",
				admitted.Total.Goodput, sustained.Total.Goodput)
		}
		if baseline.Total.P99ms <= 2*uncontended.Total.P99ms {
			t.Errorf("baseline did not degrade: p99 %.1fms within 2x uncontended %.1fms — the overload is not overloading",
				baseline.Total.P99ms, uncontended.Total.P99ms)
		}
		if admitted.Total.Shed == 0 || shedTotal == 0 {
			t.Error("admission shed nothing under 2x overload")
		}
	}
	if !doc.KilledNode.CompletedOK {
		t.Errorf("loadgen took %.1fs against a killed node, budget %.1fs", killElapsed.Seconds(), killBudget.Seconds())
	}
	if killedPhase.Requests > 0 && killedPhase.OK == killedPhase.Requests {
		t.Error("killed phase reported all-OK traffic; the kill did not take")
	}
}
