package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"
)

// fakeServer mimics the dashboard's serving surface: a catalogue at
// /api/datasets and a data endpoint whose behaviour is scripted per
// test (normal, shedding, hanging).
type fakeServer struct {
	mu       sync.Mutex
	requests []*http.Request
	handle   func(w http.ResponseWriter, r *http.Request)
}

func (f *fakeServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/api/datasets" {
		json.NewEncoder(w).Encode([]Dataset{
			{Name: "popular", Fields: []string{"elevation", "slope"}, Width: 256, Height: 128, Timesteps: 3, MaxLevel: 8},
			{Name: "tail-a", Fields: []string{"elevation"}, Width: 64, Height: 64, Timesteps: 1, MaxLevel: 6},
			{Name: "tail-b", Fields: []string{"elevation"}, Width: 64, Height: 64, Timesteps: 1, MaxLevel: 6},
		})
		return
	}
	f.mu.Lock()
	f.requests = append(f.requests, r.Clone(context.Background()))
	f.mu.Unlock()
	if f.handle != nil {
		f.handle(w, r)
		return
	}
	w.Write(make([]byte, 64))
}

func (f *fakeServer) captured() []*http.Request {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*http.Request(nil), f.requests...)
}

func TestRunClosedLoopShapesWorkload(t *testing.T) {
	fake := &fakeServer{}
	srv := httptest.NewServer(fake)
	defer srv.Close()

	rep, err := Run(context.Background(), Options{
		BaseURL:     srv.URL,
		Rate:        0, // closed loop
		Concurrency: 4,
		Duration:    300 * time.Millisecond,
		Seed:        42,
		Tenants:     4,
		Progressive: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Requests == 0 || rep.Total.OK != rep.Total.Requests {
		t.Fatalf("want all-OK traffic, got %+v", rep.Total)
	}
	if rep.Total.Goodput <= 0 || rep.Total.P50ms <= 0 {
		t.Errorf("missing aggregates: %+v", rep.Total)
	}

	reqs := fake.captured()
	byDataset := map[string]int{}
	tenants := map[string]bool{}
	progressive := false
	for _, r := range reqs {
		qv := r.URL.Query()
		byDataset[qv.Get("dataset")]++
		if tn := r.Header.Get("X-NSDF-Tenant"); tn != "" {
			tenants[tn] = true
		}
		if lv, _ := strconv.Atoi(qv.Get("level")); lv < 5 {
			progressive = true // coarse first pass of a refinement stream
		}
		if qv.Get("field") == "" {
			t.Fatalf("request without field: %s", r.URL)
		}
	}
	// Zipfian popularity: the rank-1 dataset must dominate the tail.
	if byDataset["popular"] <= byDataset["tail-a"] || byDataset["popular"] <= byDataset["tail-b"] {
		t.Errorf("popularity not zipfian: %v", byDataset)
	}
	if len(tenants) < 2 {
		t.Errorf("want multiple synthetic tenants, got %v", tenants)
	}
	if !progressive {
		t.Error("no progressive (coarse-level) requests captured")
	}
}

func TestRunOpenLoopCountsShedsAndPhases(t *testing.T) {
	fake := &fakeServer{handle: func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "over capacity", http.StatusTooManyRequests)
	}}
	srv := httptest.NewServer(fake)
	defer srv.Close()

	rep, err := Run(context.Background(), Options{
		BaseURL:     srv.URL,
		Rate:        200,
		Concurrency: 8,
		Phases: []Phase{
			{Name: "warm", Duration: 150 * time.Millisecond, Rate: 1},
			{Name: "burst", Duration: 150 * time.Millisecond, Rate: 2},
		},
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) != 2 || rep.Phases[0].Name != "warm" || rep.Phases[1].Name != "burst" {
		t.Fatalf("phase reports: %+v", rep.Phases)
	}
	if rep.Total.Shed == 0 || rep.Total.OK != 0 {
		t.Errorf("want all-shed traffic, got %+v", rep.Total)
	}
	if rep.Total.Requests != rep.Phases[0].Requests+rep.Phases[1].Requests {
		t.Errorf("total %d != phase sum %d+%d", rep.Total.Requests, rep.Phases[0].Requests, rep.Phases[1].Requests)
	}
}

// TestRunCompletesAgainstHangingServer pins the no-hangs acceptance
// property: a wedged (or killed mid-read) server degrades the run into
// failed samples, never into a stuck load generator.
func TestRunCompletesAgainstHangingServer(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	fake := &fakeServer{handle: func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}}
	srv := httptest.NewServer(fake)
	defer srv.Close()

	done := make(chan *Report, 1)
	go func() {
		rep, err := Run(context.Background(), Options{
			BaseURL:     srv.URL,
			Rate:        50,
			Concurrency: 4,
			Duration:    200 * time.Millisecond,
			Timeout:     100 * time.Millisecond,
			Seed:        3,
		})
		if err != nil {
			t.Error(err)
		}
		done <- rep
	}()
	select {
	case rep := <-done:
		if rep == nil {
			t.Fatal("no report")
		}
		if rep.Total.Failed == 0 {
			t.Errorf("want timed-out samples, got %+v", rep.Total)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("load generator hung against a wedged server")
	}
}

func TestProgressiveLevelsCoarseToFine(t *testing.T) {
	got := progressiveLevels(8, 3)
	want := []int{4, 6, 8}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if lv := progressiveLevels(2, 4); lv[0] != 0 {
		t.Errorf("clamping failed: %v", lv)
	}
}

func TestDiscoverErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	defer srv.Close()
	if _, err := Discover(context.Background(), http.DefaultClient, srv.URL); err == nil {
		t.Fatal("want error from a catalogue-less server")
	}
}
