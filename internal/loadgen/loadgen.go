// Package loadgen drives NSDF serving endpoints with a workload shaped
// like a training cohort: dataset popularity follows a zipfian
// distribution (everyone opens the tutorial dataset; a few explore the
// long tail), requests mix small probe boxes with full-extent reads,
// some clients stream progressive refinements the way the dashboard's
// resolution slider does, and traffic arrives in configurable phases
// (warm-up, burst, cool-down). Every request's latency, status, and
// byte count is captured, so a run yields the offered-load vs
// goodput/percentile curves the serving benchmarks gate on.
package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"nsdfgo/internal/telemetry/trace"
)

// Dataset describes one load-target dataset, as discovered from the
// dashboard's /api/datasets endpoint.
type Dataset struct {
	Name      string   `json:"name"`
	Fields    []string `json:"fields"`
	Width     int      `json:"width"`
	Height    int      `json:"height"`
	Timesteps int      `json:"timesteps"`
	MaxLevel  int      `json:"max_level"`
}

// Discover fetches the target server's dataset catalogue.
func Discover(ctx context.Context, client *http.Client, baseURL string) ([]Dataset, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/api/datasets", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("loadgen: discover: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: discover: %s from %s", resp.Status, baseURL)
	}
	var ds []Dataset
	if err := json.NewDecoder(resp.Body).Decode(&ds); err != nil {
		return nil, fmt.Errorf("loadgen: discover: %w", err)
	}
	if len(ds) == 0 {
		return nil, fmt.Errorf("loadgen: discover: %s serves no datasets", baseURL)
	}
	return ds, nil
}

// Phase is one traffic phase: Rate scales Options.Rate for Duration
// (e.g. a 3x burst). A zero Rate idles the generator for the duration.
type Phase struct {
	Name     string        `json:"name"`
	Duration time.Duration `json:"duration"`
	Rate     float64       `json:"rate"`
}

// Options configures a load run.
type Options struct {
	// BaseURL is the target server, e.g. http://localhost:8080.
	BaseURL string
	// Datasets are the load targets; empty discovers them from BaseURL.
	Datasets []Dataset
	// Rate is the base offered arrival rate in streams/second (open
	// loop). <= 0 switches to closed loop: Concurrency workers issue
	// streams back to back.
	Rate float64
	// Concurrency is the worker-pool size (closed loop) or the max
	// client-side in-flight bound (open loop). Default 16.
	Concurrency int
	// Duration bounds the run when Phases is empty. Default 10s.
	Duration time.Duration
	// Phases runs instead of a single steady phase when non-empty.
	Phases []Phase
	// ZipfS/ZipfV shape dataset popularity (rand.NewZipf; S > 1).
	// Defaults 1.2 / 1.
	ZipfS, ZipfV float64
	// Seed makes the workload reproducible.
	Seed int64
	// Tenants > 0 spreads streams across that many synthetic tenants via
	// the X-NSDF-Tenant header; 0 sends no tenant header.
	Tenants int
	// Progressive is the fraction of streams issued as progressive
	// refinements (coarse level first, then finer) in [0,1].
	Progressive float64
	// ProgressiveSteps is the number of refinement requests per
	// progressive stream. Default 3.
	ProgressiveSteps int
	// BoxFractions are the box edge sizes mixed into the workload, as
	// fractions of the full extent. Default {0.05, 0.25, 1.0}.
	BoxFractions []float64
	// Timeout bounds each request, so a dead or wedged server degrades
	// the run instead of hanging it. Default 15s.
	Timeout time.Duration
	// Client overrides the HTTP client (its Timeout is ignored; Timeout
	// above governs).
	Client *http.Client
	// SlowestN is how many of the run's slowest requests the report
	// keeps, each with its server-assigned trace ID — the handle a
	// student pastes into /debug/traces?federate=1 to see where a tail
	// request's time went. Default 5; negative disables.
	SlowestN int
}

// Sample is one request's outcome.
type Sample struct {
	Phase   string
	Status  int // 0 on transport error
	Latency time.Duration
	Bytes   int64
	// URL is the request that produced this sample.
	URL string
	// TraceID is the server-assigned trace ID (the X-NSDF-Trace-Id
	// response header), empty on transport error or untraced servers.
	TraceID string
}

// PhaseReport aggregates one phase (or the whole run, for Total).
type PhaseReport struct {
	Name     string  `json:"name"`
	Seconds  float64 `json:"seconds"`
	Offered  float64 `json:"offered_rps"` // streams/s offered (open loop) or achieved
	Requests int     `json:"requests"`
	OK       int     `json:"ok"`
	Shed     int     `json:"shed"`       // 429s
	ClientE  int     `json:"client_err"` // other 4xx
	ServerE  int     `json:"server_err"` // 5xx
	Failed   int     `json:"failed"`     // transport errors / timeouts
	Dropped  int     `json:"dropped"`    // open-loop arrivals the client could not launch
	Goodput  float64 `json:"goodput_rps"`
	P50ms    float64 `json:"p50_ms"`
	P95ms    float64 `json:"p95_ms"`
	P99ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
	Bytes    int64   `json:"bytes"`
}

// SlowRequest is one of the run's slowest requests, with the trace ID
// to chase it across the cluster.
type SlowRequest struct {
	URL       string  `json:"url"`
	Phase     string  `json:"phase"`
	Status    int     `json:"status"`
	LatencyMs float64 `json:"latency_ms"`
	TraceID   string  `json:"trace_id,omitempty"`
}

// Report is a full run's outcome.
type Report struct {
	Target  string        `json:"target"`
	Phases  []PhaseReport `json:"phases"`
	Total   PhaseReport   `json:"total"`
	// Slowest lists the run's N highest-latency requests (Options.
	// SlowestN), slowest first, each with its trace ID when the server
	// supplied one.
	Slowest []SlowRequest `json:"slowest_requests,omitempty"`
	Samples []Sample      `json:"-"` // raw captures, for custom analysis
}

// request is one HTTP GET the workload issues.
type request struct {
	url    string
	tenant string
	phase  string
}

// stream is one logical client interaction: a single read, or a
// progressive coarse-to-fine sequence issued in order.
type stream struct {
	reqs []request
}

// gen synthesises streams. It is driven from one goroutine at a time
// (the dispatcher, or one per closed-loop worker via clone), so rng
// needs no lock.
type gen struct {
	opts Options
	rng  *rand.Rand
	zipf *rand.Zipf
}

func newGen(opts Options, seed int64) *gen {
	rng := rand.New(rand.NewSource(seed))
	return &gen{
		opts: opts,
		rng:  rng,
		zipf: rand.NewZipf(rng, opts.ZipfS, opts.ZipfV, uint64(len(opts.Datasets)-1)),
	}
}

// next synthesises one stream for the named phase.
func (g *gen) next(phase string) stream {
	ds := g.opts.Datasets[int(g.zipf.Uint64())]
	field := ""
	if len(ds.Fields) > 0 {
		field = ds.Fields[g.rng.Intn(len(ds.Fields))]
	}
	t := 0
	if ds.Timesteps > 1 {
		t = g.rng.Intn(ds.Timesteps)
	}
	frac := g.opts.BoxFractions[g.rng.Intn(len(g.opts.BoxFractions))]
	bw := boxEdge(ds.Width, frac)
	bh := boxEdge(ds.Height, frac)
	x0 := g.rng.Intn(ds.Width - bw + 1)
	y0 := g.rng.Intn(ds.Height - bh + 1)
	tenant := ""
	if g.opts.Tenants > 0 {
		tenant = fmt.Sprintf("tenant-%d", g.rng.Intn(g.opts.Tenants))
	}
	levels := []int{ds.MaxLevel - g.rng.Intn(3)}
	if g.rng.Float64() < g.opts.Progressive {
		levels = progressiveLevels(ds.MaxLevel, g.opts.ProgressiveSteps)
	}
	var st stream
	for _, lv := range levels {
		if lv < 0 {
			lv = 0
		}
		st.reqs = append(st.reqs, request{
			url: fmt.Sprintf("%s/api/data?dataset=%s&field=%s&t=%d&x0=%d&y0=%d&x1=%d&y1=%d&level=%d",
				g.opts.BaseURL, ds.Name, field, t, x0, y0, x0+bw, y0+bh, lv),
			tenant: tenant,
			phase:  phase,
		})
	}
	return st
}

// boxEdge converts a fractional edge size to pixels, at least 1.
func boxEdge(extent int, frac float64) int {
	e := int(float64(extent) * frac)
	if e < 1 {
		e = 1
	}
	if e > extent {
		e = extent
	}
	return e
}

// progressiveLevels builds the coarse-to-fine level sequence of one
// progressive stream: steps levels, two apart (4x the samples each
// refinement in 2D), ending at the dataset's full resolution.
func progressiveLevels(maxLevel, steps int) []int {
	out := make([]int, 0, steps)
	for i := steps - 1; i >= 0; i-- {
		lv := maxLevel - 2*i
		if lv < 0 {
			lv = 0
		}
		out = append(out, lv)
	}
	return out
}

// collector gathers samples and drop counts across workers.
type collector struct {
	mu      sync.Mutex
	samples []Sample
	dropped map[string]int
}

func (c *collector) add(s Sample) {
	c.mu.Lock()
	c.samples = append(c.samples, s)
	c.mu.Unlock()
}

func (c *collector) drop(phase string) {
	c.mu.Lock()
	c.dropped[phase]++
	c.mu.Unlock()
}

// Run executes the configured load against opts.BaseURL and reports.
func Run(ctx context.Context, opts Options) (*Report, error) {
	if opts.Concurrency <= 0 {
		opts.Concurrency = 16
	}
	if opts.Duration <= 0 {
		opts.Duration = 10 * time.Second
	}
	if opts.ZipfS <= 1 {
		opts.ZipfS = 1.2
	}
	if opts.ZipfV < 1 {
		opts.ZipfV = 1
	}
	if opts.ProgressiveSteps <= 0 {
		opts.ProgressiveSteps = 3
	}
	if len(opts.BoxFractions) == 0 {
		opts.BoxFractions = []float64{0.05, 0.25, 1.0}
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 15 * time.Second
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: opts.Concurrency}}
	}
	if len(opts.Phases) == 0 {
		opts.Phases = []Phase{{Name: "steady", Duration: opts.Duration, Rate: 1}}
	}
	if len(opts.Datasets) == 0 {
		ds, err := Discover(ctx, opts.Client, opts.BaseURL)
		if err != nil {
			return nil, err
		}
		opts.Datasets = ds
	}

	col := &collector{dropped: make(map[string]int)}
	phaseSecs := make(map[string]float64)
	for _, ph := range opts.Phases {
		phaseSecs[ph.Name] += ph.Duration.Seconds()
	}

	if opts.Rate > 0 {
		runOpenLoop(ctx, opts, col)
	} else {
		runClosedLoop(ctx, opts, col)
	}
	return buildReport(opts, col, phaseSecs), nil
}

// runOpenLoop offers streams at the configured rate regardless of how
// the server keeps up — the honest way to measure an overloaded tier.
// Arrivals beyond the client's own in-flight bound are counted as
// dropped rather than silently deferred (deferring would be a closed
// loop in disguise).
func runOpenLoop(ctx context.Context, opts Options, col *collector) {
	g := newGen(opts, opts.Seed)
	work := make(chan stream, opts.Concurrency)
	var wg sync.WaitGroup
	for i := 0; i < opts.Concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case st, ok := <-work:
					if !ok {
						return
					}
					runStream(ctx, opts, st, col)
				}
			}
		}()
	}
	for _, ph := range opts.Phases {
		deadline := time.Now().Add(ph.Duration)
		rate := opts.Rate * ph.Rate
		if rate <= 0 {
			idle(ctx, ph.Duration)
			continue
		}
		interval := time.Duration(float64(time.Second) / rate)
		if interval <= 0 {
			interval = time.Microsecond
		}
		ticker := time.NewTicker(interval)
		for time.Now().Before(deadline) && ctx.Err() == nil {
			select {
			case <-ctx.Done():
			case <-ticker.C:
				select {
				case work <- g.next(ph.Name):
				default:
					col.drop(ph.Name)
				}
			}
		}
		ticker.Stop()
	}
	close(work)
	wg.Wait()
}

// runClosedLoop keeps Concurrency synthetic clients busy back to back —
// the workload shape of a classroom where everyone waits for their plot
// before asking for the next one.
func runClosedLoop(ctx context.Context, opts Options, col *collector) {
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < opts.Concurrency; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			g := newGen(opts, opts.Seed+int64(worker)*7919)
			elapsed := time.Since(start)
			for _, ph := range opts.Phases {
				phaseEnd := elapsed + ph.Duration
				deadline := start.Add(phaseEnd)
				if ph.Rate <= 0 {
					idle(ctx, time.Until(deadline))
					elapsed = phaseEnd
					continue
				}
				for time.Now().Before(deadline) && ctx.Err() == nil {
					runStream(ctx, opts, g.next(ph.Name), col)
				}
				elapsed = phaseEnd
			}
		}(i)
	}
	wg.Wait()
}

// idle sleeps through a zero-rate phase, abandoning early on cancel.
func idle(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// runStream issues the stream's requests in order, capturing one sample
// each. A failed refinement ends the stream (the dashboard would stop
// refining too).
func runStream(ctx context.Context, opts Options, st stream, col *collector) {
	for _, rq := range st.reqs {
		s, ok := doRequest(ctx, opts, rq)
		col.add(s)
		if !ok {
			return
		}
	}
}

// doRequest performs one GET, draining the body so connection reuse and
// byte accounting both work. ok reports whether the stream should
// continue refining.
func doRequest(ctx context.Context, opts Options, rq request) (Sample, bool) {
	rctx, cancel := context.WithTimeout(ctx, opts.Timeout)
	defer cancel()
	s := Sample{Phase: rq.phase, URL: rq.url}
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, rq.url, nil)
	if err != nil {
		return s, false
	}
	if rq.tenant != "" {
		req.Header.Set("X-NSDF-Tenant", rq.tenant)
	}
	start := time.Now()
	resp, err := opts.Client.Do(req)
	if err != nil {
		s.Latency = time.Since(start)
		return s, false
	}
	defer resp.Body.Close()
	n, _ := io.Copy(io.Discard, resp.Body)
	s.Latency = time.Since(start)
	s.Status = resp.StatusCode
	s.Bytes = n
	s.TraceID = resp.Header.Get(trace.TraceIDHeader)
	return s, s.Status == http.StatusOK
}

// buildReport aggregates the captured samples per phase and overall.
func buildReport(opts Options, col *collector, phaseSecs map[string]float64) *Report {
	col.mu.Lock()
	samples := col.samples
	dropped := col.dropped
	col.mu.Unlock()

	byPhase := make(map[string][]Sample)
	order := make([]string, 0, len(opts.Phases))
	seen := make(map[string]bool)
	for _, ph := range opts.Phases {
		if !seen[ph.Name] {
			seen[ph.Name] = true
			order = append(order, ph.Name)
		}
	}
	for _, s := range samples {
		byPhase[s.Phase] = append(byPhase[s.Phase], s)
	}
	rep := &Report{Target: opts.BaseURL, Samples: samples}
	var totalSecs float64
	for _, ph := range opts.Phases {
		totalSecs += ph.Duration.Seconds()
	}
	for _, name := range order {
		pr := aggregate(name, byPhase[name], phaseSecs[name])
		pr.Dropped = dropped[name]
		rep.Phases = append(rep.Phases, pr)
	}
	rep.Total = aggregate("total", samples, totalSecs)
	for _, n := range dropped {
		rep.Total.Dropped += n
	}
	rep.Slowest = slowest(samples, opts.SlowestN)
	return rep
}

// slowest picks the n highest-latency answered samples, slowest first.
// Transport failures carry no server latency or trace ID, so they are
// excluded — a failed request is a Failed count, not a tail sample.
func slowest(samples []Sample, n int) []SlowRequest {
	if n == 0 {
		n = 5
	}
	if n < 0 {
		return nil
	}
	answered := make([]Sample, 0, len(samples))
	for _, s := range samples {
		if s.Status != 0 {
			answered = append(answered, s)
		}
	}
	sort.Slice(answered, func(i, j int) bool { return answered[i].Latency > answered[j].Latency })
	if len(answered) > n {
		answered = answered[:n]
	}
	out := make([]SlowRequest, 0, len(answered))
	for _, s := range answered {
		out = append(out, SlowRequest{
			URL:       s.URL,
			Phase:     s.Phase,
			Status:    s.Status,
			LatencyMs: float64(s.Latency) / float64(time.Millisecond),
			TraceID:   s.TraceID,
		})
	}
	return out
}

// aggregate folds samples into one PhaseReport.
func aggregate(name string, samples []Sample, secs float64) PhaseReport {
	pr := PhaseReport{Name: name, Seconds: secs, Requests: len(samples)}
	lat := make([]float64, 0, len(samples))
	for _, s := range samples {
		pr.Bytes += s.Bytes
		switch {
		case s.Status == 0:
			pr.Failed++
		case s.Status == http.StatusOK:
			pr.OK++
			lat = append(lat, float64(s.Latency)/float64(time.Millisecond))
		case s.Status == http.StatusTooManyRequests:
			pr.Shed++
		case s.Status >= 500:
			pr.ServerE++
		default:
			pr.ClientE++
		}
	}
	if secs > 0 {
		pr.Offered = float64(len(samples)) / secs
		pr.Goodput = float64(pr.OK) / secs
	}
	if len(lat) > 0 {
		sort.Float64s(lat)
		pr.P50ms = percentile(lat, 0.50)
		pr.P95ms = percentile(lat, 0.95)
		pr.P99ms = percentile(lat, 0.99)
		pr.MaxMs = lat[len(lat)-1]
	}
	return pr
}

// percentile reads the p-quantile from sorted ms latencies.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
