package nsdfgo_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"nsdfgo/internal/dashboard"
	"nsdfgo/internal/idx"
	"nsdfgo/internal/query"
	"nsdfgo/internal/raster"
	"nsdfgo/internal/storage"
	"nsdfgo/internal/telemetry"
)

// blockHangStore serves descriptor objects from the fast store but
// routes every block read through a Conditioned wrapper whose RTT is
// effectively infinite: opening the dataset works, any block fetch
// hangs until the caller's context dies. This is the "remote store went
// dark mid-session" scenario the context-threading work exists for.
type blockHangStore struct {
	fast storage.Store
	slow *storage.Conditioned
}

func newBlockHangStore(inner storage.Store) *blockHangStore {
	return &blockHangStore{
		fast: inner,
		slow: storage.NewConditioned(inner, storage.NetworkProfile{RTT: time.Hour}, 1),
	}
}

func (s *blockHangStore) pick(key string) storage.Store {
	if strings.Contains(key, idx.BlockPrefix) {
		return s.slow
	}
	return s.fast
}

func (s *blockHangStore) Put(ctx context.Context, key string, data []byte) error {
	return s.fast.Put(ctx, key, data)
}

func (s *blockHangStore) Get(ctx context.Context, key string) ([]byte, error) {
	return s.pick(key).Get(ctx, key)
}

func (s *blockHangStore) Delete(ctx context.Context, key string) error {
	return s.fast.Delete(ctx, key)
}

func (s *blockHangStore) Stat(ctx context.Context, key string) (storage.ObjectInfo, error) {
	return s.fast.Stat(ctx, key)
}

func (s *blockHangStore) List(ctx context.Context, prefix string) ([]storage.ObjectInfo, error) {
	return s.fast.List(ctx, prefix)
}

// buildHungDataset writes a small dataset through the fast path, then
// reopens it behind the hanging block reads.
func buildHungDataset(t *testing.T) *idx.Dataset {
	t.Helper()
	ctx := context.Background()
	mem := storage.NewMemStore()
	meta, err := idx.NewMeta([]int{64, 64}, []idx.Field{{Name: "elevation", Type: idx.Float32}})
	if err != nil {
		t.Fatal(err)
	}
	meta.BitsPerBlock = 8
	ds, err := idx.Create(ctx, storage.NewIDXBackend(mem, "ds"), meta)
	if err != nil {
		t.Fatal(err)
	}
	g := raster.New(64, 64)
	for i := range g.Data {
		g.Data[i] = float32(i)
	}
	if err := ds.WriteGrid(ctx, "elevation", 0, g); err != nil {
		t.Fatal(err)
	}
	hung, err := idx.Open(ctx, storage.NewIDXBackend(newBlockHangStore(mem), "ds"))
	if err != nil {
		t.Fatal(err)
	}
	hung.SetFetchParallelism(4)
	return hung
}

// waitGoroutinesBelow polls until the live goroutine count is back at
// or below want.
func waitGoroutinesBelow(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines did not drain: have %d, want <= %d", runtime.NumGoroutine(), want)
}

// TestDashboardClientDisconnectFreesWorkers is the end-to-end
// acceptance test for the context-threading work: a dashboard data
// request against a store conditioned to hang is abandoned by the
// client; the request context must propagate down through the query
// engine into the fetch worker pool, the read must die promptly with
// context.Canceled, no fetch workers may leak, and the cancellation
// must increment nsdf_idx_reads_cancelled_total.
func TestDashboardClientDisconnectFreesWorkers(t *testing.T) {
	ds := buildHungDataset(t)
	reg := telemetry.NewRegistry()
	server := dashboard.NewServer()
	server.EnableTelemetry(reg)
	server.Register("hung", query.New(ds, 1<<20))

	ts := httptest.NewServer(server)
	defer ts.Close()

	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/api/data?dataset=hung&field=elevation", nil)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()

	// Give the handler time to reach the hung store, then disconnect.
	time.Sleep(100 * time.Millisecond)
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("client saw %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request did not unwind after client disconnect")
	}

	// The handler goroutine, the fetch feeder, and all four workers must
	// exit once the request context dies. httptest keeps a couple of
	// connection goroutines alive briefly, hence the small allowance.
	waitGoroutinesBelow(t, base+2)

	deadline := time.Now().Add(5 * time.Second)
	for {
		if reg.SumFamily("nsdf_idx_reads_cancelled_total") >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("nsdf_idx_reads_cancelled_total = %v, want >= 1",
				reg.SumFamily("nsdf_idx_reads_cancelled_total"))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRequestTimeoutBoundsHungRead exercises the -request-timeout
// middleware path: with a server-side deadline the same hung read must
// unwind on its own — no client disconnect required — and surface 504
// to the still-connected client.
func TestRequestTimeoutBoundsHungRead(t *testing.T) {
	ds := buildHungDataset(t)
	server := dashboard.NewServer()
	server.Register("hung", query.New(ds, 1<<20))

	ts := httptest.NewServer(telemetry.WithRequestTimeout(server, 50*time.Millisecond))
	defer ts.Close()

	start := time.Now()
	resp, err := http.Get(ts.URL + "/api/data?dataset=hung&field=elevation")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want %d", resp.StatusCode, http.StatusGatewayTimeout)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hung read took %v to time out, want well under the RTT", elapsed)
	}
}
