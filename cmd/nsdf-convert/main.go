// Command nsdf-convert is the step-2 CLI of the tutorial workflow: it
// converts rasters into one multiresolution IDX dataset on disk,
// preserving accuracy, and reports the size change (the paper's ~20%
// claim is directly observable from its output). Inputs may be GeoTIFF,
// NetCDF classic, PNG (converted to luminance), or raw float32 binary —
// the format versatility §IV-B describes.
//
// Usage:
//
//	nsdf-convert -out ./tennessee.idxdata ./data/*.tif
//	nsdf-convert -out ./sm.idxdata -variable soil_moisture ./esa_cci.nc
//	nsdf-convert -out ./scan.idxdata -raw-width 512 -raw-height 512 frame.raw
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"nsdfgo/internal/convert"
	"nsdfgo/internal/idx"
	"nsdfgo/internal/raster"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nsdf-convert:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "dataset.idxdata", "output directory for the IDX dataset")
	codec := flag.String("codec", "", "block codec (default: per-type shuffle+zlib)")
	bitsPerBlock := flag.Int("bitsperblock", idx.DefaultBitsPerBlock, "samples per block = 2^bitsperblock")
	validate := flag.Bool("validate", true, "read back and verify every field bit-for-bit")
	variable := flag.String("variable", "", "NetCDF variable to extract (default: first 2D data variable)")
	rawWidth := flag.Int("raw-width", 0, "width of raw float32 inputs")
	rawHeight := flag.Int("raw-height", 0, "height of raw float32 inputs")
	writeParallelism := flag.Int("write-parallelism", 0, "concurrent block writes per field (0 = GOMAXPROCS)")
	flag.Parse()
	if flag.NArg() == 0 {
		return fmt.Errorf("no inputs (usage: nsdf-convert -out DIR file.{tif,nc,png,raw}...)")
	}

	opts := convert.Options{Variable: *variable, RawWidth: *rawWidth, RawHeight: *rawHeight}
	var inputs []convert.Input
	sizes := map[string]int64{}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		g, err := convert.LoadRaster(path, data, opts)
		if err != nil {
			return err
		}
		name := convert.SanitizeFieldName(path)
		inputs = append(inputs, convert.Input{FieldName: name, Grid: g})
		sizes[name] = int64(len(data))
	}

	ctx := context.Background()
	be, err := idx.NewDirBackend(*out)
	if err != nil {
		return err
	}
	ds, err := convert.ToIDXWith(ctx, be, inputs, convert.IDXOptions{
		BitsPerBlock:     *bitsPerBlock,
		Codec:            *codec,
		WriteParallelism: *writeParallelism,
	})
	if err != nil {
		return err
	}
	var srcTotal, idxTotal int64
	for _, in := range inputs {
		if *validate {
			back, _, err := ds.ReadFull(ctx, in.FieldName, 0)
			if err != nil {
				return fmt.Errorf("validate %s: %w", in.FieldName, err)
			}
			if !raster.Equal(in.Grid, back) {
				return fmt.Errorf("validate %s: round trip not identical", in.FieldName)
			}
		}
		stored, err := ds.StoredBytes(ctx, in.FieldName, 0)
		if err != nil {
			return err
		}
		srcTotal += sizes[in.FieldName]
		idxTotal += stored
		fmt.Printf("field %-24s source %10d B -> IDX %10d B  (%.1f%% reduction)\n",
			in.FieldName, sizes[in.FieldName], stored, 100*(1-float64(stored)/float64(sizes[in.FieldName])))
	}
	fmt.Printf("dataset %s: %d fields, %dx%d, %d levels, overall reduction %.1f%%\n",
		*out, len(inputs), inputs[0].Grid.W, inputs[0].Grid.H, ds.Meta.MaxLevel(),
		100*(1-float64(idxTotal)/float64(srcTotal)))
	return nil
}
