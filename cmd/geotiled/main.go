// Command geotiled is the step-1 CLI of the tutorial workflow: it
// synthesises a DEM scene (standing in for the USGS download), computes
// terrain parameters with the tiled GEOtiled engine, and writes one
// GeoTIFF per parameter.
//
// Usage:
//
//	geotiled -region tennessee -width 1024 -height 512 -seed 7 -out ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nsdfgo/internal/dem"
	"nsdfgo/internal/geotiled"
	"nsdfgo/internal/raster"
	"nsdfgo/internal/tiff"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "geotiled:", err)
		os.Exit(1)
	}
}

func run() error {
	region := flag.String("region", "tennessee", "scene to synthesise: tennessee or conus")
	width := flag.Int("width", 1024, "scene width in pixels")
	height := flag.Int("height", 512, "scene height in pixels")
	seed := flag.Uint64("seed", 20240624, "synthesis seed")
	params := flag.String("params", "elevation,slope,aspect,hillshade", "comma-separated terrain parameters")
	out := flag.String("out", ".", "output directory for GeoTIFFs")
	tileSize := flag.Int("tile", 512, "GEOtiled tile size in pixels")
	workers := flag.Int("workers", 0, "tile workers (0 = GOMAXPROCS)")
	flag.Parse()

	var d *raster.Grid
	switch *region {
	case "tennessee":
		d = dem.Tennessee(*width, *height, *seed)
	case "conus":
		d = dem.CONUS(*width, *height, *seed)
	default:
		return fmt.Errorf("unknown region %q (want tennessee or conus)", *region)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	opts := geotiled.Options{TileSize: *tileSize, Workers: *workers}
	for _, name := range strings.Split(*params, ",") {
		name = strings.TrimSpace(name)
		p, err := geotiled.ParseParam(name)
		if err != nil {
			return err
		}
		g, err := geotiled.ComputeTiled(d, p, opts)
		if err != nil {
			return err
		}
		path := filepath.Join(*out, fmt.Sprintf("%s_%s.tif", *region, name))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		err = tiff.Encode(f, tiff.FromGrid(g), tiff.EncodeOptions{Compression: tiff.CompressionDeflate})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("write %s: %w", path, err)
		}
		st := g.ComputeStats()
		fmt.Printf("wrote %-40s %dx%d  min=%.2f max=%.2f mean=%.2f\n", path, g.W, g.H, st.Min, st.Max, st.Mean)
	}
	return nil
}
