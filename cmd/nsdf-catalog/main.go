// Command nsdf-catalog runs or queries the NSDF-Catalog indexing service.
//
// Serve mode starts the HTTP API, optionally loading and persisting a
// JSON-lines catalog file:
//
//	nsdf-catalog -serve -addr :7000 -file catalog.jsonl
//
// Query mode searches a catalog file directly, or a running service with
// -remote:
//
//	nsdf-catalog -file catalog.jsonl -search "terrain tennessee" -source dataverse
//	nsdf-catalog -remote http://localhost:7000 -search "terrain"
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"time"

	"nsdfgo/internal/catalog"
	"nsdfgo/internal/telemetry"
	"nsdfgo/internal/telemetry/flight"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nsdf-catalog:", err)
		os.Exit(1)
	}
}

func run() error {
	serve := flag.Bool("serve", false, "run the HTTP catalog service")
	addr := flag.String("addr", ":7000", "listen address for -serve")
	remote := flag.String("remote", "", "query a running catalog service at this URL instead of a file")
	file := flag.String("file", "", "JSON-lines catalog file to load")
	search := flag.String("search", "", "search terms (query mode)")
	source := flag.String("source", "", "restrict to one source repository")
	typ := flag.String("type", "", "restrict to one data type")
	limit := flag.Int("limit", 20, "maximum results")
	stats := flag.Bool("stats", false, "print catalog statistics and exit")
	logFormat := flag.String("log-format", telemetry.LogFormatText, "log encoding for -serve: text or json")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address while serving (empty disables)")
	flag.Parse()

	if *remote != "" {
		client := catalog.NewClient(*remote)
		ctx := context.Background()
		if *stats {
			s, err := client.Stats(ctx)
			if err != nil {
				return err
			}
			fmt.Printf("records: %d\ntokens: %d\ntotal bytes: %d\n", s.Records, s.Tokens, s.TotalBytes)
			return nil
		}
		results, err := client.Search(ctx, catalog.Query{Terms: *search, Source: *source, Type: *typ, Limit: *limit})
		if err != nil {
			return err
		}
		if len(results) == 0 {
			fmt.Println("no matches")
			return nil
		}
		for _, r := range results {
			fmt.Printf("%-14s %-36s %-12s %-8s %10d B  %s\n", r.ID, r.Name, r.Source, r.Type, r.Size, r.Location)
		}
		return nil
	}

	cat := catalog.New()
	if *file != "" {
		f, err := os.Open(*file)
		if err == nil {
			loaded, lerr := catalog.Load(f)
			cerr := f.Close()
			if lerr != nil {
				return lerr
			}
			if cerr != nil {
				return cerr
			}
			cat = loaded
			fmt.Fprintf(os.Stderr, "loaded %d records from %s\n", cat.Len(), *file)
		} else if !os.IsNotExist(err) {
			return err
		}
	}

	switch {
	case *serve:
		logger, err := telemetry.NewLogger(os.Stderr, *logFormat)
		if err != nil {
			return err
		}
		telemetry.SetLogger(logger)
		reg := telemetry.NewRegistry()
		telemetry.RegisterRuntimeMetrics(reg)
		telemetry.RegisterBuildInfo(reg)
		srv := catalog.NewServer(cat)
		srv.EnableTelemetry(reg)
		// The anomaly flight recorder is mounted ahead of the catalog
		// routes so every server in the fleet answers
		// /debug/flightrecorder, even ones with few anomaly sources.
		fl := flight.New(0)
		fl.SetNode("catalog")
		mux := http.NewServeMux()
		mux.Handle("/debug/flightrecorder", fl.Handler())
		mux.Handle("/", srv)
		if *pprofAddr != "" {
			go func(addr string) {
				logger.Info("pprof listening", slog.String("addr", addr), slog.String("path", "/debug/pprof/"))
				ps := &http.Server{Addr: addr, Handler: telemetry.PprofMux(), ReadHeaderTimeout: 5 * time.Second}
				if err := ps.ListenAndServe(); err != nil {
					logger.Error("pprof server failed", slog.String("error", err.Error()))
				}
			}(*pprofAddr)
		}
		logger.Info("catalog service listening",
			slog.String("addr", *addr),
			slog.Int("records", cat.Len()),
			slog.String("metrics", "/metrics"))
		hs := &http.Server{
			Addr:              *addr,
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
			IdleTimeout:       2 * time.Minute,
		}
		return hs.ListenAndServe()
	case *stats:
		s := cat.Stats()
		fmt.Printf("records: %d\ntokens: %d\ntotal bytes: %d\n", s.Records, s.Tokens, s.TotalBytes)
		for src, n := range s.BySource {
			fmt.Printf("source %-20s %d\n", src, n)
		}
		for t, n := range s.ByType {
			fmt.Printf("type   %-20s %d\n", t, n)
		}
		return nil
	case *search != "" || *source != "" || *typ != "":
		results := cat.Search(catalog.Query{Terms: *search, Source: *source, Type: *typ, Limit: *limit})
		if len(results) == 0 {
			fmt.Println("no matches")
			return nil
		}
		for _, r := range results {
			fmt.Printf("%-14s %-36s %-12s %-8s %10d B  %s\n", r.ID, r.Name, r.Source, r.Type, r.Size, r.Location)
		}
		return nil
	default:
		return fmt.Errorf("nothing to do: pass -serve, -stats, or -search")
	}
}
