// Command nsdf-workflow runs the tutorial's four-step modular workflow
// (Fig. 4) end to end on an in-memory NSDF fabric and prints the
// provenance trail, the storage footprints, the validation metrics, and
// the catalog contents — the CLI equivalent of the tutorial notebooks.
//
// Usage:
//
//	nsdf-workflow -region tennessee -width 1024 -height 512 -seed 7
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"nsdfgo/internal/catalog"
	"nsdfgo/internal/core"
	"nsdfgo/internal/idx"
	"nsdfgo/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nsdf-workflow:", err)
		os.Exit(1)
	}
}

func run() error {
	region := flag.String("region", "tennessee", "scene: tennessee or conus")
	width := flag.Int("width", 512, "scene width")
	height := flag.Int("height", 256, "scene height")
	seed := flag.Uint64("seed", 20240624, "synthesis seed")
	flag.Parse()

	fabric := core.NewFabric()
	wf, err := fabric.TutorialWorkflow(core.TutorialConfig{
		Region: *region, Width: *width, Height: *height, Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("running four-step workflow: region=%s %dx%d seed=%d\n\n", *region, *width, *height, *seed)
	bb, trail, err := wf.Run(context.Background())
	fmt.Println("provenance trail:")
	fmt.Print(trail.String())
	if err != nil {
		return err
	}

	doi, _ := core.Fetch[string](bb, core.KeyDOI)
	fmt.Printf("\npublished to Dataverse as %s\n", doi)

	tiffBytes, _ := core.Fetch[map[string]int64](bb, core.KeyTIFFBytes)
	idxBytes, _ := core.Fetch[map[string]int64](bb, core.KeyIDXBytes)
	reports, _ := core.Fetch[map[string]metrics.Report](bb, core.KeyValidation)
	names := make([]string, 0, len(tiffBytes))
	for n := range tiffBytes {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Println("\nconversion and validation (step 2 + 3):")
	var tiffTotal, idxTotal int64
	for _, n := range names {
		rep := reports[n]
		fmt.Printf("  %-10s TIFF %9d B -> IDX %9d B (%5.1f%% reduction)  identical=%v\n",
			n, tiffBytes[n], idxBytes[n], 100*(1-float64(idxBytes[n])/float64(tiffBytes[n])), rep.Identical)
		tiffTotal += tiffBytes[n]
		idxTotal += idxBytes[n]
	}
	fmt.Printf("  overall reduction: %.1f%%\n", 100*(1-float64(idxTotal)/float64(tiffTotal)))

	ds, _ := core.Fetch[*idx.Dataset](bb, core.KeyDataset)
	fmt.Printf("\nIDX dataset: %dx%d, %d fields, %d resolution levels\n",
		ds.Meta.Dims[0], ds.Meta.Dims[1], len(ds.Meta.Fields), ds.Meta.MaxLevel())

	snip, _ := core.Fetch[[]byte](bb, core.KeySnip)
	fmt.Printf("step-4 snip download: %d-byte NumPy array\n", len(snip))

	fmt.Println("\ncatalog records:")
	for _, r := range fabric.Catalog.Search(catalog.Query{Limit: 100}) {
		fmt.Printf("  %-14s %-28s %-12s %-6s %9d B\n", r.ID, r.Name, r.Source, r.Type, r.Size)
	}
	return nil
}
