// Command nsdf-netmon runs the NSDF-Plugin's measurement role over the
// simulated 8-site testbed: full-mesh probe sweeps, the latency and
// throughput matrices of Fig. 2, constraint scans, and a continuous
// monitoring mode that flags degrading links (optionally with an injected
// degradation to demonstrate detection).
//
// Usage:
//
//	nsdf-netmon -probes 20
//	nsdf-netmon -monitor 5 -degrade utk:umich:4:1
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"nsdfgo/internal/netmon"
	"nsdfgo/internal/telemetry"
	"nsdfgo/internal/telemetry/flight"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nsdf-netmon:", err)
		os.Exit(1)
	}
}

func run() error {
	probes := flag.Int("probes", 20, "probes per site pair per sweep")
	seed := flag.Int64("seed", 20240624, "probe noise seed")
	maxRTT := flag.Duration("max-rtt", 60*time.Millisecond, "constraint: maximum acceptable mean RTT")
	minGbps := flag.Float64("min-gbps", 15, "constraint: minimum acceptable mean throughput (Gbps)")
	monitor := flag.Int("monitor", 0, "run N monitoring sweeps and report degradation alerts")
	degrade := flag.String("degrade", "", "inject degradation before the final sweep: from:to:rttFactor:bwFactor")
	metricsAddr := flag.String("metrics-addr", "", "serve a /metrics telemetry endpoint on this address while monitoring")
	logFormat := flag.String("log-format", telemetry.LogFormatText, "log encoding for operational messages: text or json")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address while monitoring (empty disables)")
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		return err
	}
	telemetry.SetLogger(logger)

	net, err := netmon.NewNetwork(netmon.Testbed(), *seed)
	if err != nil {
		return err
	}

	if *monitor > 0 {
		reg := telemetry.NewRegistry()
		telemetry.RegisterRuntimeMetrics(reg)
		telemetry.RegisterBuildInfo(reg)
		fl := flight.New(0)
		fl.SetNode("netmon")
		if *metricsAddr != "" {
			mux := http.NewServeMux()
			mux.Handle("/metrics", reg.Handler())
			mux.Handle("/debug/flightrecorder", fl.Handler())
			mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
				telemetry.WriteHealth(w, "netmon")
			})
			srv := &http.Server{
				Addr:              *metricsAddr,
				Handler:           mux,
				ReadHeaderTimeout: 5 * time.Second,
				IdleTimeout:       2 * time.Minute,
			}
			go func() {
				if err := srv.ListenAndServe(); err != nil {
					logger.Error("metrics server failed", slog.String("error", err.Error()))
				}
			}()
			logger.Info("telemetry listening", slog.String("addr", *metricsAddr), slog.String("metrics", "/metrics"))
		}
		if *pprofAddr != "" {
			go func(addr string) {
				logger.Info("pprof listening", slog.String("addr", addr), slog.String("path", "/debug/pprof/"))
				ps := &http.Server{Addr: addr, Handler: telemetry.PprofMux(), ReadHeaderTimeout: 5 * time.Second}
				if err := ps.ListenAndServe(); err != nil {
					logger.Error("pprof server failed", slog.String("error", err.Error()))
				}
			}(*pprofAddr)
		}
		return runMonitor(net, reg, fl, logger, *monitor, *probes, *degrade)
	}

	rep, err := net.Measure(*probes)
	if err != nil {
		return err
	}
	fmt.Print(rep.LatencyMatrix())
	fmt.Println()
	fmt.Print(rep.ThroughputMatrix())
	cons := rep.Constraints(*maxRTT, *minGbps*1e9)
	fmt.Printf("\nconstraints (RTT > %v or throughput < %.1f Gbps): %d pairs\n", *maxRTT, *minGbps, len(cons))
	for _, c := range cons {
		fmt.Printf("  %-16s %s\n", c.Pair, c.Reason)
	}
	return nil
}

func runMonitor(net *netmon.Network, reg *telemetry.Registry, fl *flight.Recorder, logger *slog.Logger, sweeps, probes int, degrade string) error {
	mon, err := netmon.NewMonitor(net, sweeps+1)
	if err != nil {
		return err
	}
	mon.SetTelemetry(reg)
	for i := 0; i < sweeps; i++ {
		if _, err := mon.Tick(probes); err != nil {
			return err
		}
		fmt.Printf("sweep %d/%d complete  %s\n", i+1, sweeps, monitorSummary(reg))
	}
	if degrade != "" {
		parts := strings.Split(degrade, ":")
		if len(parts) != 4 {
			return fmt.Errorf("bad -degrade %q (want from:to:rttFactor:bwFactor)", degrade)
		}
		rttF, err1 := strconv.ParseFloat(parts[2], 64)
		bwF, err2 := strconv.ParseFloat(parts[3], 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad -degrade factors in %q", degrade)
		}
		if err := net.Degrade(parts[0], parts[1], rttF, bwF); err != nil {
			return err
		}
		fmt.Printf("injected degradation on %s->%s (rtt x%g, bw /%g)\n", parts[0], parts[1], rttF, bwF)
	}
	if _, err := mon.Tick(probes); err != nil {
		return err
	}
	alerts, err := mon.Alerts(2, 2)
	if err != nil {
		return err
	}
	if len(alerts) == 0 {
		fmt.Println("no degradation detected")
		return nil
	}
	fmt.Printf("%d degradation alert(s):\n", len(alerts))
	for _, a := range alerts {
		fmt.Printf("  %-16s %s\n", a.Pair, a.Reason)
		fl.Record(flight.KindAlert, "", "link %s degraded: %s", a.Pair, a.Reason)
	}
	fl.Dump(logger)
	fmt.Println(monitorSummary(reg))
	return nil
}

// monitorSummary condenses the monitoring telemetry into one line.
func monitorSummary(reg *telemetry.Registry) string {
	line := fmt.Sprintf("[metrics] sweeps=%.0f probes=%.0f alerts=%.0f",
		reg.SumFamily("nsdf_netmon_sweeps_total"),
		reg.SumFamily("nsdf_netmon_probes_total"),
		reg.SumFamily("nsdf_netmon_alerts_total"))
	if p50, p95, p99, ok := reg.FamilyQuantiles("nsdf_netmon_rtt_seconds"); ok {
		line += fmt.Sprintf(" rtt_p50=%.1fms p95=%.1fms p99=%.1fms", p50*1e3, p95*1e3, p99*1e3)
	}
	return line
}
