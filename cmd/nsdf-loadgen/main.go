// Command nsdf-loadgen replays a training-cohort workload against an
// NSDF serving endpoint (nsdf-dashboard, or anything speaking its API):
// zipfian dataset popularity, mixed box sizes, progressive refinement
// streams, and configurable burst phases, with per-request latency
// capture. The JSON report (per-phase p50/p95/p99, goodput, shed and
// error counts) is the raw material for the serving-under-load
// benchmarks.
//
// Usage:
//
//	nsdf-loadgen -url http://localhost:8080 -rate 200 -duration 30s
//	nsdf-loadgen -url http://localhost:8080 -rate 100 \
//	    -phases warm:10s:1,burst:20s:4,cool:10s:1 -tenants 8 -out run.json
//	nsdf-loadgen -url http://localhost:8080 -closed -concurrency 32
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"nsdfgo/internal/loadgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nsdf-loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	url := flag.String("url", "http://localhost:8080", "target server base URL")
	rate := flag.Float64("rate", 100, "offered stream arrival rate per second (open loop)")
	closed := flag.Bool("closed", false, "closed loop: -concurrency workers issue streams back to back, ignoring -rate")
	concurrency := flag.Int("concurrency", 16, "worker pool size (closed loop) / max client in-flight (open loop)")
	duration := flag.Duration("duration", 10*time.Second, "run length when -phases is empty")
	phasesSpec := flag.String("phases", "", "comma-separated phases as name:duration:rate-multiplier, e.g. warm:10s:1,burst:20s:4,cool:10s:1")
	zipfS := flag.Float64("zipf-s", 1.2, "zipf skew of dataset popularity (> 1; larger = more skewed)")
	seed := flag.Int64("seed", 1, "workload RNG seed")
	tenants := flag.Int("tenants", 0, "spread streams across this many synthetic tenants via X-NSDF-Tenant (0 sends no header)")
	progressive := flag.Float64("progressive", 0.3, "fraction of streams issued as progressive coarse-to-fine refinements [0,1]")
	progressiveSteps := flag.Int("progressive-steps", 3, "refinement requests per progressive stream")
	boxes := flag.String("boxes", "0.05,0.25,1.0", "comma-separated box edge sizes as fractions of the full extent")
	timeout := flag.Duration("timeout", 15*time.Second, "per-request timeout; keeps the run finishing even against a dead server")
	slowestN := flag.Int("slowest", 5, "slowest requests kept in the report with their trace IDs (-1 disables)")
	out := flag.String("out", "", "write the JSON report here (empty prints to stdout)")
	flag.Parse()

	phases, err := parsePhases(*phasesSpec)
	if err != nil {
		return err
	}
	fractions, err := parseFractions(*boxes)
	if err != nil {
		return err
	}
	opts := loadgen.Options{
		BaseURL:          strings.TrimRight(*url, "/"),
		Rate:             *rate,
		Concurrency:      *concurrency,
		Duration:         *duration,
		Phases:           phases,
		ZipfS:            *zipfS,
		Seed:             *seed,
		Tenants:          *tenants,
		Progressive:      *progressive,
		ProgressiveSteps: *progressiveSteps,
		BoxFractions:     fractions,
		Timeout:          *timeout,
		SlowestN:         *slowestN,
	}
	if *closed {
		opts.Rate = 0
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := loadgen.Run(ctx, opts)
	if err != nil {
		return err
	}

	for _, pr := range append(rep.Phases, rep.Total) {
		fmt.Fprintf(os.Stderr,
			"%-8s %6.1fs  req=%-6d ok=%-6d shed=%-5d err=%-4d fail=%-4d drop=%-4d goodput=%7.1f/s  p50=%6.1fms p95=%6.1fms p99=%6.1fms\n",
			pr.Name, pr.Seconds, pr.Requests, pr.OK, pr.Shed,
			pr.ClientE+pr.ServerE, pr.Failed, pr.Dropped, pr.Goodput,
			pr.P50ms, pr.P95ms, pr.P99ms)
	}

	for _, sr := range rep.Slowest {
		fmt.Fprintf(os.Stderr, "slow %8.1fms status=%d trace=%s %s\n",
			sr.LatencyMs, sr.Status, sr.TraceID, sr.URL)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if *out == "" {
		fmt.Println(string(enc))
		return nil
	}
	return os.WriteFile(*out, append(enc, '\n'), 0o644)
}

// parsePhases decodes name:duration:rate-multiplier triples.
func parsePhases(spec string) ([]loadgen.Phase, error) {
	if spec == "" {
		return nil, nil
	}
	var out []loadgen.Phase
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad phase %q (want name:duration:rate-multiplier)", part)
		}
		d, err := time.ParseDuration(fields[1])
		if err != nil {
			return nil, fmt.Errorf("bad phase %q: %w", part, err)
		}
		mult, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || mult < 0 {
			return nil, fmt.Errorf("bad phase %q: rate multiplier must be a number >= 0", part)
		}
		out = append(out, loadgen.Phase{Name: fields[0], Duration: d, Rate: mult})
	}
	return out, nil
}

// parseFractions decodes the -boxes list.
func parseFractions(spec string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(spec, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || f <= 0 || f > 1 {
			return nil, fmt.Errorf("bad box fraction %q (want 0 < f <= 1)", part)
		}
		out = append(out, f)
	}
	return out, nil
}
