// Command nsdf-store runs the object-storage service the tutorial's
// workflow uploads to and streams from. With -token it behaves like the
// private Seal Storage deployment (bearer-token auth); without, like a
// public endpoint. Storage is backed by a directory, so data survives
// restarts.
//
// Observability endpoints live beside the object API: /metrics exposes
// per-op counters and latency histograms, /debug/traces the most recent
// request traces (both stay reachable even when -token locks the object
// paths down), and -pprof-addr serves the Go profiler on a separate
// listener.
//
// Usage:
//
//	nsdf-store -addr :9000 -root ./objects -token secret
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"time"

	"nsdfgo/internal/cache"
	"nsdfgo/internal/storage"
	"nsdfgo/internal/telemetry"
	"nsdfgo/internal/telemetry/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nsdf-store:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":9000", "listen address")
	root := flag.String("root", "./objects", "object storage directory")
	token := flag.String("token", "", "bearer token; empty serves a public store")
	cacheMB := flag.Int("cache-mb", 0, "in-memory object cache size in MiB (0 disables)")
	cacheDir := flag.String("cache-dir", "", "directory for an on-disk cache tier below memory (empty disables; contents are wiped at startup)")
	cacheDiskBytes := flag.Int64("cache-disk-bytes", 256<<20, "on-disk cache budget in bytes (with -cache-dir)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request deadline bounding store I/O (0 disables)")
	slowRequest := flag.Duration("slow-request", time.Second, "log a structured span summary for requests at least this slow (0 disables)")
	logFormat := flag.String("log-format", telemetry.LogFormatText, "log encoding: text or json")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables)")
	traceBuffer := flag.Int("trace-buffer", trace.DefaultCapacity, "completed traces retained for /debug/traces")
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		return err
	}
	telemetry.SetLogger(logger)

	fileStore, err := storage.NewFileStore(*root)
	if err != nil {
		return err
	}
	reg := telemetry.NewRegistry()
	telemetry.RegisterRuntimeMetrics(reg)
	traces := trace.NewCollector(*traceBuffer)
	// Layer the read-through cache (when enabled) under the
	// instrumentation, so /metrics latency histograms reflect what clients
	// actually experienced (hits included) while nsdf_cache_* series report
	// the cache's own effectiveness.
	var inner storage.Store = fileStore
	if *cacheMB > 0 || *cacheDir != "" {
		opts := cache.Options{MemBytes: int64(*cacheMB) << 20}
		if *cacheDir != "" {
			opts.DiskDir = *cacheDir
			opts.DiskBytes = *cacheDiskBytes
		}
		tiered, err := cache.NewTiered(opts)
		if err != nil {
			return fmt.Errorf("object cache: %w", err)
		}
		tiered.Instrument(reg, "store")
		inner = storage.NewCached(inner, tiered)
	}
	store := storage.NewInstrumented(inner, reg, "file")

	// Observability endpoints mount on the mux ahead of the object server
	// so they stay reachable (and unauthenticated) even with -token set.
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/traces", traces.Handler())
	mux.Handle("/", telemetry.WithRequestTimeout(storage.NewServer(store, *token), *requestTimeout))

	mode := "public"
	if *token != "" {
		mode = "private"
	}
	if *pprofAddr != "" {
		go servePprof(logger, *pprofAddr)
	}
	logger.Info("object store listening",
		slog.String("addr", *addr),
		slog.String("root", *root),
		slog.String("mode", mode),
		slog.String("metrics", "/metrics"),
		slog.String("traces", "/debug/traces"))
	srv := &http.Server{
		Addr: *addr,
		Handler: telemetry.WithTracing(mux, traces,
			telemetry.TracingOptions{Service: "store", SlowRequest: *slowRequest, Logger: logger}),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	return srv.ListenAndServe()
}

// servePprof runs the opt-in profiling listener, separate from the data
// port so the profiler is never exposed to object-store clients.
func servePprof(logger *slog.Logger, addr string) {
	logger.Info("pprof listening", slog.String("addr", addr), slog.String("path", "/debug/pprof/"))
	srv := &http.Server{
		Addr:              addr,
		Handler:           telemetry.PprofMux(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if err := srv.ListenAndServe(); err != nil {
		logger.Error("pprof server failed", slog.String("error", err.Error()))
	}
}
