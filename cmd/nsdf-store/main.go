// Command nsdf-store runs the object-storage service the tutorial's
// workflow uploads to and streams from. With -token it behaves like the
// private Seal Storage deployment (bearer-token auth); without, like a
// public endpoint. Storage is backed by a directory, so data survives
// restarts.
//
// Usage:
//
//	nsdf-store -addr :9000 -root ./objects -token secret
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"nsdfgo/internal/storage"
	"nsdfgo/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nsdf-store:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":9000", "listen address")
	root := flag.String("root", "./objects", "object storage directory")
	token := flag.String("token", "", "bearer token; empty serves a public store")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request deadline bounding store I/O (0 disables)")
	flag.Parse()

	store, err := storage.NewFileStore(*root)
	if err != nil {
		return err
	}
	mode := "public"
	if *token != "" {
		mode = "private (token auth)"
	}
	fmt.Printf("object store listening on %s, root %s, %s\n", *addr, *root, mode)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           telemetry.WithRequestTimeout(storage.NewServer(store, *token), *requestTimeout),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	return srv.ListenAndServe()
}
