// Command nsdf-store runs the object-storage service the tutorial's
// workflow uploads to and streams from. With -token it behaves like the
// private Seal Storage deployment (bearer-token auth); without, like a
// public endpoint. Storage is backed by a directory, so data survives
// restarts.
//
// Usage:
//
//	nsdf-store -addr :9000 -root ./objects -token secret
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"nsdfgo/internal/storage"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nsdf-store:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":9000", "listen address")
	root := flag.String("root", "./objects", "object storage directory")
	token := flag.String("token", "", "bearer token; empty serves a public store")
	flag.Parse()

	store, err := storage.NewFileStore(*root)
	if err != nil {
		return err
	}
	mode := "public"
	if *token != "" {
		mode = "private (token auth)"
	}
	fmt.Printf("object store listening on %s, root %s, %s\n", *addr, *root, mode)
	return http.ListenAndServe(*addr, storage.NewServer(store, *token))
}
