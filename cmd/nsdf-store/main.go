// Command nsdf-store runs the object-storage service the tutorial's
// workflow uploads to and streams from. With -token it behaves like the
// private Seal Storage deployment (bearer-token auth); without, like a
// public endpoint. Storage is backed by a directory, so data survives
// restarts.
//
// Observability endpoints live beside the object API: /metrics exposes
// per-op counters and latency histograms, /debug/traces the most recent
// request traces (both stay reachable even when -token locks the object
// paths down), and -pprof-addr serves the Go profiler on a separate
// listener.
//
// With -peers the process joins a sharded, replicated tier: block keys
// place onto a consistent-hash ring spanning this node and its peers,
// writes replicate -replicas ways, and reads fail over (and, with
// -hedge-after, hedge) across replicas. Peer names are the ring
// identity and must be consistent fleet-wide. Peer traffic flows over
// the /internal/ plane (this node's local store, bypassing the
// router), which every nsdf-store mounts; -peers URLs are plain base
// URLs — the /internal suffix is appended automatically.
//
// Usage:
//
//	nsdf-store -addr :9000 -root ./objects -token secret
//	nsdf-store -addr :9001 -root ./objects-a -node-name a \
//	    -peers b=http://host2:9001,c=http://host3:9001 \
//	    -replicas 2 -hedge-after 30ms
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nsdfgo/internal/admission"
	"nsdfgo/internal/cache"
	"nsdfgo/internal/shard"
	"nsdfgo/internal/storage"
	"nsdfgo/internal/telemetry"
	"nsdfgo/internal/telemetry/flight"
	"nsdfgo/internal/telemetry/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nsdf-store:", err)
		os.Exit(1)
	}
}

// internalPlane is the path prefix of the leaf object plane every
// nsdf-store mounts: the same REST layout as the public plane but
// backed by the local store alone, bypassing the router. Peer routers
// (other nsdf-store nodes, nsdf-dashboard) replicate to it; routing
// peer traffic through a peer's own router would forward it again,
// and two replicas forwarding to each other never terminate.
const internalPlane = "/internal"

func run() error {
	addr := flag.String("addr", ":9000", "listen address")
	root := flag.String("root", "./objects", "object storage directory")
	token := flag.String("token", "", "bearer token; empty serves a public store")
	peers := flag.String("peers", "", "comma-separated name=url peers forming a sharded tier with this node (empty disables sharding)")
	nodeName := flag.String("node-name", "self", "this node's fleet-wide ring name (with -peers; must be consistent across the fleet)")
	replicaCount := flag.Int("replicas", 2, "replicas per block key across the sharded tier (with -peers)")
	hedgeAfter := flag.Duration("hedge-after", 0, "fire a hedged read at the next replica after this delay; pick a p99-ish value (0 disables hedging)")
	cacheMB := flag.Int("cache-mb", 0, "in-memory object cache size in MiB (0 disables)")
	cacheDir := flag.String("cache-dir", "", "directory for an on-disk cache tier below memory (empty disables; contents are wiped at startup)")
	cacheDiskBytes := flag.Int64("cache-disk-bytes", 256<<20, "on-disk cache budget in bytes (with -cache-dir)")
	maxInflight := flag.Int("max-inflight", 0, "admission control: max concurrently served public-plane requests (0 disables the concurrency limiter)")
	maxQueue := flag.Int("max-queue", 64, "admission control: requests allowed to wait for a slot before shedding (with -max-inflight)")
	queueTimeout := flag.Duration("queue-timeout", 2*time.Second, "admission control: longest a queued request waits for a slot before 429 (with -max-inflight; 0 waits for the request deadline)")
	tenantRPS := flag.Float64("tenant-rps", 0, "admission control: per-tenant steady request rate in req/s, tenant from "+admission.TenantHeader+" or client address (0 disables rate limiting)")
	tenantBurst := flag.Float64("tenant-burst", 0, "admission control: per-tenant token-bucket burst (defaults to -tenant-rps)")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint attached to shed (429) responses")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request deadline bounding store I/O (0 disables)")
	slowRequest := flag.Duration("slow-request", time.Second, "log a structured span summary for requests at least this slow (0 disables)")
	logFormat := flag.String("log-format", telemetry.LogFormatText, "log encoding: text or json")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables)")
	traceBuffer := flag.Int("trace-buffer", trace.DefaultCapacity, "completed traces retained for /debug/traces")
	flightBuffer := flag.Int("flight-buffer", flight.DefaultCapacity, "anomaly events retained for /debug/flightrecorder")
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		return err
	}
	telemetry.SetLogger(logger)

	fileStore, err := storage.NewFileStore(*root)
	if err != nil {
		return err
	}
	reg := telemetry.NewRegistry()
	telemetry.RegisterRuntimeMetrics(reg)
	telemetry.RegisterBuildInfo(reg)
	traces := trace.NewCollector(*traceBuffer)
	traces.SetNode(*nodeName)
	fl := flight.New(*flightBuffer)
	fl.SetNode(*nodeName)
	// With -peers, this process becomes one node of a sharded tier: its
	// FileStore joins a consistent-hash ring with the peer stores, and
	// every request routes through shard.Router (replication, hedged
	// reads, failover). The router implements storage.Store, so the
	// cache and instrumentation layers below stack on it unchanged.
	//
	// Peers are dialled at their /internal/ leaf plane — the one backed
	// by the remote node's local store alone. Routing a replica write to
	// a peer's public (router-backed) plane would re-route it, and two
	// replicas forwarding to each other never terminate.
	var inner storage.Store = fileStore
	if *peers != "" {
		nodes, err := shard.ParsePeers(*peers, func(target string) storage.Store {
			return storage.NewClient(target+internalPlane, *token)
		})
		if err != nil {
			return err
		}
		nodes = append(nodes, shard.Node{Name: *nodeName, Store: fileStore})
		router, err := shard.NewRouter(nodes, shard.Options{Replicas: *replicaCount, HedgeAfter: *hedgeAfter})
		if err != nil {
			return err
		}
		router.Instrument(reg)
		router.SetFlight(fl)
		inner = router
		logger.Info("sharded tier enabled",
			slog.String("node", *nodeName),
			slog.Int("nodes", router.Ring().Len()),
			slog.Int("replicas", router.Replicas()),
			slog.Duration("hedge_after", *hedgeAfter))
	}
	// Layer the read-through cache (when enabled) under the
	// instrumentation, so /metrics latency histograms reflect what clients
	// actually experienced (hits included) while nsdf_cache_* series report
	// the cache's own effectiveness.
	if *cacheMB > 0 || *cacheDir != "" {
		opts := cache.Options{MemBytes: int64(*cacheMB) << 20}
		if *cacheDir != "" {
			opts.DiskDir = *cacheDir
			opts.DiskBytes = *cacheDiskBytes
		}
		tiered, err := cache.NewTiered(opts)
		if err != nil {
			return fmt.Errorf("object cache: %w", err)
		}
		tiered.Instrument(reg, "store")
		inner = storage.NewCached(inner, tiered)
	}
	backendLabel := "file"
	if *peers != "" {
		backendLabel = "shard"
	}
	store := storage.NewInstrumented(inner, reg, backendLabel)

	// Observability endpoints mount on the mux ahead of the object server
	// so they stay reachable (and unauthenticated) even with -token set.
	// The /internal/ plane serves this node's local store directly —
	// never the router — so peer routers have a leaf to replicate to;
	// it shares the public plane's bearer token.
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/traces", traces.Handler())
	mux.Handle("/debug/flightrecorder", fl.Handler())
	mux.Handle(internalPlane+"/",
		http.StripPrefix(internalPlane,
			telemetry.WithRequestTimeout(storage.NewServer(fileStore, *token), *requestTimeout)))
	mux.Handle("/", telemetry.WithRequestTimeout(storage.NewServer(store, *token), *requestTimeout))

	// Admission control gates the public object plane: per-tenant rate
	// limiting plus a bounded-concurrency limiter shedding overflow as
	// 429 + Retry-After. The /internal/ replication plane, /metrics and
	// /debug/ stay exempt (middleware path exemptions), so peer
	// replication and operator visibility survive saturation.
	var admit *admission.Controller
	if *maxInflight > 0 || *tenantRPS > 0 {
		admit = admission.NewController(admission.Options{
			MaxConcurrent: *maxInflight,
			MaxQueue:      *maxQueue,
			QueueTimeout:  *queueTimeout,
			TenantRate:    *tenantRPS,
			TenantBurst:   *tenantBurst,
			RetryAfter:    *retryAfter,
		})
		admit.Instrument(reg, "store")
		admit.SetFlight(fl)
		logger.Info("admission control enabled",
			slog.Int("max_inflight", *maxInflight),
			slog.Int("max_queue", *maxQueue),
			slog.Duration("queue_timeout", *queueTimeout),
			slog.Float64("tenant_rps", *tenantRPS))
	}

	mode := "public"
	if *token != "" {
		mode = "private"
	}
	if *pprofAddr != "" {
		go servePprof(logger, *pprofAddr)
	}
	logger.Info("object store listening",
		slog.String("addr", *addr),
		slog.String("root", *root),
		slog.String("mode", mode),
		slog.String("metrics", "/metrics"),
		slog.String("traces", "/debug/traces"))
	srv := &http.Server{
		Addr: *addr,
		Handler: telemetry.WithTracing(admit.Middleware(mux), traces,
			telemetry.TracingOptions{Service: "store", SlowRequest: *slowRequest, Logger: logger, Flight: fl}),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	return serveUntilSignal(srv, logger, fl)
}

// serveUntilSignal runs srv until it fails or the process is told to
// stop, then drains connections and dumps the flight recorder — the
// anomaly ring's last chance to reach the logs.
func serveUntilSignal(srv *http.Server, logger *slog.Logger, fl *flight.Recorder) error {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		fl.Dump(logger)
		return err
	case sig := <-stop:
		logger.Info("shutting down", slog.String("signal", sig.String()))
		fl.Dump(logger)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
}

// servePprof runs the opt-in profiling listener, separate from the data
// port so the profiler is never exposed to object-store clients.
func servePprof(logger *slog.Logger, addr string) {
	logger.Info("pprof listening", slog.String("addr", addr), slog.String("path", "/debug/pprof/"))
	srv := &http.Server{
		Addr:              addr,
		Handler:           telemetry.PprofMux(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if err := srv.ListenAndServe(); err != nil {
		logger.Error("pprof server failed", slog.String("error", err.Error()))
	}
}
