// Command nsdf-lint runs the repository's project-specific static
// analyzers (see internal/lint) over module packages. It is stdlib-only
// and joins `make check` via the lint target.
//
// Usage:
//
//	nsdf-lint [-json] [-list] [patterns ...]
//
// Patterns default to ./... and follow the go tool's shape: ./dir,
// ./dir/..., or ./... for the whole module. Exit status is 0 when
// clean, 1 when any finding is reported, 2 on usage or load errors and
// on analyzer internal errors (a panic, a CFG that failed to build, a
// dataflow fixpoint that did not converge) — a malfunctioning analyzer
// must never let CI pass by reporting nothing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"nsdfgo/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nsdf-lint [-json] [-list] [patterns ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nsdf-lint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nsdf-lint:", err)
		return 2
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nsdf-lint:", err)
		return 2
	}
	findings, internalErrs := lint.RunAll(pkgs, lint.Analyzers(), lint.DefaultConfig())

	cwd, _ := os.Getwd()
	if *jsonOut {
		type jsonFinding struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Message  string `json:"message"`
		}
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				Analyzer: f.Analyzer,
				File:     relPath(cwd, f.Pos.Filename),
				Line:     f.Pos.Line,
				Column:   f.Pos.Column,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "nsdf-lint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s: %s\n", relPath(cwd, f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
		}
	}
	// Internal errors outrank findings: each already names the analyzer
	// and the package it was visiting.
	if len(internalErrs) > 0 {
		for _, e := range internalErrs {
			fmt.Fprintln(os.Stderr, "nsdf-lint: internal error:", e)
		}
		fmt.Fprintf(os.Stderr, "nsdf-lint: %d internal analyzer error(s)\n", len(internalErrs))
		return 2
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "nsdf-lint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the first
// directory containing go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// relPath renders p relative to base when that is shorter and stays
// inside it; otherwise the absolute path.
func relPath(base, p string) string {
	if base == "" {
		return p
	}
	if rel, err := filepath.Rel(base, p); err == nil && !filepath.IsAbs(rel) && rel != "" && !hasDotDot(rel) {
		return rel
	}
	return p
}

func hasDotDot(p string) bool {
	return p == ".." || len(p) >= 3 && p[:3] == ".."+string(filepath.Separator)
}
