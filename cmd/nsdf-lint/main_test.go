package main

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestDriverExitCodes builds and runs the real binary: it must exit 0
// on the lint-clean lint package itself and 1 (with findings on
// stdout) when pointed at a violating fixture package.
func TestDriverExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("spawning the toolchain is not short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "nsdf-lint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/nsdf-lint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build driver: %v\n%s", err, out)
	}

	clean := exec.Command(bin, "./internal/lint")
	clean.Dir = root
	if out, err := clean.CombinedOutput(); err != nil {
		t.Fatalf("driver on lint-clean package: %v\n%s", err, out)
	}

	dirty := exec.Command(bin, "-json", "./internal/lint/testdata/src/droppederr")
	dirty.Dir = root
	var stdout, stderr bytes.Buffer
	dirty.Stdout, dirty.Stderr = &stdout, &stderr
	err = dirty.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("driver on violating fixture: want exit 1, got %v\nstderr: %s", err, stderr.String())
	}
	var findings []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("parse -json output: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("driver reported exit 1 but no JSON findings")
	}
	for _, f := range findings {
		if f.Analyzer != "droppederr" {
			t.Errorf("unexpected analyzer %q in %+v", f.Analyzer, f)
		}
	}
}
