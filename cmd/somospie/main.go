// Command somospie runs the SOMOSPIE soil-moisture workflow on the NSDF
// fabric: GEOtiled terrain covariates → synthetic satellite truth and
// sparse observations (published to Dataverse as NetCDF) → model
// competition (kNN / IDW / OLS) → gridded downscaled product published as
// an IDX dataset.
//
// Usage:
//
//	somospie -width 256 -height 160 -observations 2000 -seed 7
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"nsdfgo/internal/catalog"
	"nsdfgo/internal/core"
	"nsdfgo/internal/metrics"
	"nsdfgo/internal/raster"
	"nsdfgo/internal/somospie"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "somospie:", err)
		os.Exit(1)
	}
}

func run() error {
	width := flag.Int("width", 192, "region width in pixels")
	height := flag.Int("height", 128, "region height in pixels")
	observations := flag.Int("observations", 1200, "sparse observation count")
	testFrac := flag.Float64("test-fraction", 0.25, "held-out fraction for evaluation")
	seed := flag.Uint64("seed", 20240624, "synthesis seed")
	flag.Parse()

	fabric := core.NewFabric()
	w, err := fabric.MoistureWorkflow(core.MoistureConfig{
		Width: *width, Height: *height, Seed: *seed,
		Observations: *observations, TestFraction: *testFrac,
	})
	if err != nil {
		return err
	}
	fmt.Printf("running SOMOSPIE workflow: %dx%d, %d observations, seed %d\n\n",
		*width, *height, *observations, *seed)
	bb, trail, err := w.Run(context.Background())
	fmt.Println("provenance trail:")
	fmt.Print(trail.String())
	if err != nil {
		return err
	}

	reports, _ := core.Fetch[[]somospie.EvalReport](bb, core.KeyEvaluations)
	fmt.Println("\nmodel competition (held-out evaluation):")
	for _, rep := range reports {
		fmt.Printf("  %s\n", rep)
	}
	best, _ := core.Fetch[string](bb, core.KeyBestModel)
	fmt.Printf("winner: %s\n", best)

	pred, _ := core.Fetch[*raster.Grid](bb, core.KeyPrediction)
	truth, _ := core.Fetch[*raster.Grid](bb, core.KeyTruth)
	rep, err := metrics.Compare(truth.Data, pred.Data, truth.W, truth.H)
	if err != nil {
		return err
	}
	fmt.Printf("\ngridded product vs truth: %s\n", rep)

	doi, _ := core.Fetch[string](bb, core.KeyDOI)
	fmt.Printf("\nobservation product: %s (NetCDF on Dataverse)\n", doi)
	fmt.Println("catalog records:")
	for _, r := range fabric.Catalog.Search(catalog.Query{Terms: "moisture", Limit: 10}) {
		fmt.Printf("  %-24s %-12s %9d B  %s\n", r.Name, r.Source, r.Size, r.Location)
	}
	return nil
}
