// Command nsdf-experiments regenerates the paper's tables and figures
// (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
// paper-vs-measured record).
//
// Usage:
//
//	nsdf-experiments -run all
//	nsdf-experiments -run fig5
//	nsdf-experiments -list
package main

import (
	"flag"
	"fmt"
	"os"

	"nsdfgo/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nsdf-experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	id := flag.String("run", "all", "experiment id (see -list) or all")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	runners := experiments.Runners()
	if *list {
		for _, r := range runners {
			fmt.Println(r.ID)
		}
		return nil
	}
	if *id == "all" {
		return experiments.All(os.Stdout)
	}
	for _, r := range runners {
		if r.ID == *id {
			return r.Run(os.Stdout)
		}
	}
	return fmt.Errorf("unknown experiment %q (try -list)", *id)
}
