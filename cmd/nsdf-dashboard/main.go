// Command nsdf-dashboard serves the step-4 interactive dashboard over one
// or more IDX datasets. With -demo it synthesises a Tennessee dataset
// first so the dashboard works out of the box.
//
// Every request runs under a trace: the X-NSDF-Trace-Id response header
// names it, /debug/traces shows where its time went, requests slower
// than -slow-request log a structured summary of their worst spans, and
// -pprof-addr exposes the Go profiler on a separate listener.
//
// Usage:
//
//	nsdf-dashboard -addr :8080 -data name=./tennessee.idxdata
//	nsdf-dashboard -demo -slow-request 250ms -log-format json
//	nsdf-dashboard -peers a=http://h1:9000,b=http://h2:9000 \
//	    -replicas 2 -hedge-after 30ms -data tennessee=datasets/tennessee
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"nsdfgo/internal/admission"
	"nsdfgo/internal/cache"
	"nsdfgo/internal/dashboard"
	"nsdfgo/internal/dem"
	"nsdfgo/internal/geotiled"
	"nsdfgo/internal/idx"
	"nsdfgo/internal/query"
	"nsdfgo/internal/shard"
	"nsdfgo/internal/storage"
	"nsdfgo/internal/telemetry"
	"nsdfgo/internal/telemetry/flight"
	"nsdfgo/internal/telemetry/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nsdf-dashboard:", err)
		os.Exit(1)
	}
}

type dataFlags []string

func (d *dataFlags) String() string { return strings.Join(*d, ",") }

// Set implements flag.Value.
func (d *dataFlags) Set(v string) error {
	*d = append(*d, v)
	return nil
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	cacheMB := flag.Int("cache-mb", 64, "in-memory block cache size per dataset in MiB")
	cacheDir := flag.String("cache-dir", "", "directory for an on-disk block cache tier below memory (empty disables; contents are wiped at startup)")
	cacheDiskBytes := flag.Int64("cache-disk-bytes", 256<<20, "on-disk block cache budget per dataset in bytes (with -cache-dir)")
	demo := flag.Bool("demo", false, "synthesise and register a demo Tennessee dataset")
	summaryEvery := flag.Duration("summary-interval", 30*time.Second, "interval between one-line telemetry summaries (0 disables)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request deadline bounding all block I/O (0 disables)")
	slowRequest := flag.Duration("slow-request", time.Second, "log a structured span summary for requests at least this slow (0 disables)")
	logFormat := flag.String("log-format", telemetry.LogFormatText, "log encoding: text or json")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables)")
	traceBuffer := flag.Int("trace-buffer", trace.DefaultCapacity, "completed traces retained for /debug/traces")
	nodeName := flag.String("node-name", "dashboard", "this process's node name, stamped on every span it records")
	federateTimeout := flag.Duration("federate-timeout", dashboard.DefaultFederateTimeout, "per-peer fetch deadline for /debug/traces?federate=1 assembly (with -peers)")
	flightBuffer := flag.Int("flight-buffer", flight.DefaultCapacity, "anomaly events retained for /debug/flightrecorder")
	peers := flag.String("peers", "", "comma-separated name=url store nodes forming the sharded block tier; -data specs then name key prefixes inside it")
	peerToken := flag.String("peer-token", "", "bearer token for the sharded tier's stores (with -peers)")
	replicaCount := flag.Int("replicas", 2, "replicas per block key across the sharded tier (with -peers)")
	hedgeAfter := flag.Duration("hedge-after", 0, "fire a hedged block read at the next replica after this delay; pick a p99-ish value (0 disables hedging)")
	maxInflight := flag.Int("max-inflight", 0, "admission control: max concurrently served requests (0 disables the concurrency limiter)")
	maxQueue := flag.Int("max-queue", 64, "admission control: requests allowed to wait for a slot before shedding (with -max-inflight)")
	queueTimeout := flag.Duration("queue-timeout", 2*time.Second, "admission control: longest a queued request waits for a slot before 429 (with -max-inflight; 0 waits for the request deadline)")
	tenantRPS := flag.Float64("tenant-rps", 0, "admission control: per-tenant steady request rate in req/s, tenant from "+admission.TenantHeader+" or client address (0 disables rate limiting)")
	tenantBurst := flag.Float64("tenant-burst", 0, "admission control: per-tenant token-bucket burst (defaults to -tenant-rps)")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint attached to shed (429) responses")
	var data dataFlags
	flag.Var(&data, "data", "dataset as name=path/to/idx/dir, or name=key/prefix with -peers (repeatable)")
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		return err
	}
	telemetry.SetLogger(logger)

	ctx := context.Background()
	reg := telemetry.NewRegistry()
	telemetry.RegisterRuntimeMetrics(reg)
	telemetry.RegisterBuildInfo(reg)
	traces := trace.NewCollector(*traceBuffer)
	traces.SetNode(*nodeName)
	fl := flight.New(*flightBuffer)
	fl.SetNode(*nodeName)
	server := dashboard.NewServer()
	server.EnableTelemetry(reg)
	server.EnableTracing(traces)
	server.EnableFlightRecorder(fl)
	server.SetLogger(logger)
	// Admission control fronts every data endpoint: per-tenant rate
	// limiting plus a bounded-concurrency limiter whose overflow is shed
	// as 429 + Retry-After. Its pressure feeds the idx fetch pools below
	// so per-request block-fetch fan-out contracts under load.
	var admit *admission.Controller
	if *maxInflight > 0 || *tenantRPS > 0 {
		admit = admission.NewController(admission.Options{
			MaxConcurrent: *maxInflight,
			MaxQueue:      *maxQueue,
			QueueTimeout:  *queueTimeout,
			TenantRate:    *tenantRPS,
			TenantBurst:   *tenantBurst,
			RetryAfter:    *retryAfter,
		})
		admit.Instrument(reg, "dashboard")
		admit.SetFlight(fl)
		logger.Info("admission control enabled",
			slog.Int("max_inflight", *maxInflight),
			slog.Int("max_queue", *maxQueue),
			slog.Duration("queue_timeout", *queueTimeout),
			slog.Float64("tenant_rps", *tenantRPS))
	}
	// register hooks each engine's fetch pool to the admission limiter's
	// pressure before exposing it: an engine serving admitted requests
	// fans out fewer concurrent block fetches as the limiter fills.
	register := func(name string, e *query.Engine) {
		if admit != nil {
			e.SetFetchPressure(admit.Pressure)
		}
		server.Register(name, e)
	}
	// newDatasetCache builds one tiered block cache per dataset. Each
	// dataset gets its own subdirectory of -cache-dir because the disk
	// tier wipes its directory at startup.
	newDatasetCache := func(name string) (*cache.Tiered, error) {
		opts := cache.Options{MemBytes: int64(*cacheMB) << 20}
		if *cacheDir != "" {
			opts.DiskDir = filepath.Join(*cacheDir, name)
			opts.DiskBytes = *cacheDiskBytes
		}
		return cache.NewTiered(opts)
	}
	// With -peers, datasets live in the sharded block tier rather than on
	// local disk: the router (replication, hedged reads, failover) drops
	// under storage.Instrumented and the IDX backend adapter unchanged,
	// and each -data spec names the dataset's key prefix inside the tier.
	// Peers are dialled at nsdf-store's /internal/ leaf plane (local
	// store only): replicating through a peer's router-backed public
	// plane would route the write again.
	var shardStore storage.Store
	if *peers != "" {
		nodes, err := shard.ParsePeers(*peers, func(target string) storage.Store {
			return storage.NewClient(target+"/internal", *peerToken)
		})
		if err != nil {
			return err
		}
		router, err := shard.NewRouter(nodes, shard.Options{Replicas: *replicaCount, HedgeAfter: *hedgeAfter})
		if err != nil {
			return err
		}
		router.Instrument(reg)
		router.SetFlight(fl)
		shardStore = storage.NewInstrumented(router, reg, "shard")
		// Federated trace assembly pulls remote spans from the peers'
		// debug endpoints, which live at the peer base URL (the /internal
		// suffix is an object-plane detail).
		targets, err := shard.PeerTargets(*peers)
		if err != nil {
			return err
		}
		server.EnableFederation(targets, *federateTimeout)
		logger.Info("sharded block tier enabled",
			slog.Int("nodes", router.Ring().Len()),
			slog.Int("replicas", router.Replicas()),
			slog.Duration("hedge_after", *hedgeAfter))
	}
	registered := 0
	for _, spec := range data {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -data %q (want name=path)", spec)
		}
		var be idx.Backend
		if shardStore != nil {
			be = storage.NewIDXBackend(shardStore, path)
		} else {
			dirBE, err := idx.NewDirBackend(path)
			if err != nil {
				return err
			}
			be = dirBE
		}
		ds, err := idx.Open(ctx, be)
		if err != nil {
			return fmt.Errorf("open %s: %w", path, err)
		}
		bc, err := newDatasetCache(name)
		if err != nil {
			return fmt.Errorf("cache for %s: %w", name, err)
		}
		register(name, query.NewWithCache(ds, bc))
		logger.Info("registered dataset",
			slog.String("dataset", name),
			slog.Int("width", ds.Meta.Dims[0]),
			slog.Int("height", ds.Meta.Dims[1]),
			slog.Int("fields", len(ds.Meta.Fields)),
			slog.Int("timesteps", ds.Meta.Timesteps))
		registered++
	}
	if *demo {
		ds, err := buildDemoDataset(ctx)
		if err != nil {
			return fmt.Errorf("demo dataset: %w", err)
		}
		bc, err := newDatasetCache("tennessee_demo")
		if err != nil {
			return fmt.Errorf("cache for tennessee_demo: %w", err)
		}
		register("tennessee_demo", query.NewWithCache(ds, bc))
		logger.Info("registered dataset",
			slog.String("dataset", "tennessee_demo"),
			slog.Int("width", 512), slog.Int("height", 256),
			slog.Int("fields", len(geotiled.TutorialParams)))
		registered++
	}
	if registered == 0 {
		return fmt.Errorf("nothing to serve: pass -data name=path or -demo")
	}
	if *summaryEvery > 0 {
		go summaryLoop(logger, reg, *summaryEvery)
	}
	if *pprofAddr != "" {
		go servePprof(logger, *pprofAddr)
	}
	logger.Info("dashboard listening",
		slog.String("addr", *addr),
		slog.String("metrics", "/metrics"),
		slog.String("traces", "/debug/traces"))
	// ReadHeaderTimeout/IdleTimeout keep slow or silent clients from
	// holding connections open indefinitely; WithRequestTimeout bounds
	// each request's block I/O when -request-timeout is set; the
	// admission middleware sits just inside tracing so shed requests are
	// traced (and counted by the HTTP metrics) but never reach the
	// router, the caches, or the fetch pools; WithTracing is outermost so
	// the root span covers the whole request.
	var inner http.Handler = telemetry.WithRequestTimeout(server, *requestTimeout)
	inner = admit.Middleware(inner)
	handler := telemetry.WithTracing(inner, traces,
		telemetry.TracingOptions{Service: "dashboard", SlowRequest: *slowRequest, Logger: logger, Flight: fl})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	return serveUntilSignal(srv, logger, fl)
}

// serveUntilSignal runs srv until it fails or the process is told to
// stop, then drains connections and dumps the flight recorder — the
// anomaly ring's last chance to reach the logs.
func serveUntilSignal(srv *http.Server, logger *slog.Logger, fl *flight.Recorder) error {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		fl.Dump(logger)
		return err
	case sig := <-stop:
		logger.Info("shutting down", slog.String("signal", sig.String()))
		fl.Dump(logger)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
}

// servePprof runs the opt-in profiling listener. It is a separate server
// so the profiler is never reachable from the data-serving port.
func servePprof(logger *slog.Logger, addr string) {
	logger.Info("pprof listening", slog.String("addr", addr), slog.String("path", "/debug/pprof/"))
	srv := &http.Server{
		Addr:              addr,
		Handler:           telemetry.PprofMux(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if err := srv.ListenAndServe(); err != nil {
		logger.Error("pprof server failed", slog.String("error", err.Error()))
	}
}

// summaryLoop emits a periodic structured operational summary so sweep
// logs capture hit rates and latency percentiles without scraping.
func summaryLoop(logger *slog.Logger, reg *telemetry.Registry, every time.Duration) {
	for range time.Tick(every) {
		logSummary(logger, reg)
	}
}

// logSummary condenses the registry into one structured log record.
func logSummary(logger *slog.Logger, reg *telemetry.Registry) {
	hits := reg.SumFamily("nsdf_cache_hits_total")
	misses := reg.SumFamily("nsdf_cache_misses_total")
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = 100 * hits / (hits + misses)
	}
	args := []any{
		slog.Float64("http_requests", reg.SumFamily("nsdf_http_requests_total")),
		slog.Float64("cache_hit_pct", hitRate),
		slog.Float64("blocks_read", reg.SumFamily("nsdf_idx_blocks_read_total")),
		slog.Float64("blocks_cached", reg.SumFamily("nsdf_idx_blocks_cached_total")),
		slog.Float64("bytes_read", reg.SumFamily("nsdf_idx_bytes_read_total")),
	}
	if p50, p95, p99, ok := reg.FamilyQuantiles("nsdf_http_request_seconds"); ok {
		args = append(args,
			slog.Float64("http_p50_ms", p50*1e3),
			slog.Float64("http_p95_ms", p95*1e3),
			slog.Float64("http_p99_ms", p99*1e3))
	}
	logger.Info("telemetry summary", args...)
}

// buildDemoDataset synthesises the tutorial's Tennessee scene in memory.
func buildDemoDataset(ctx context.Context) (*idx.Dataset, error) {
	d := dem.Tennessee(512, 256, 20240624)
	fields := make([]idx.Field, 0, len(geotiled.TutorialParams))
	for _, p := range geotiled.TutorialParams {
		fields = append(fields, idx.Field{Name: p.String(), Type: idx.Float32})
	}
	meta, err := idx.NewMeta([]int{512, 256}, fields)
	if err != nil {
		return nil, err
	}
	meta.Geo = d.Geo
	ds, err := idx.Create(ctx, idx.NewMemBackend(), meta)
	if err != nil {
		return nil, err
	}
	for _, p := range geotiled.TutorialParams {
		g, err := geotiled.ComputeTiled(d, p, geotiled.Options{})
		if err != nil {
			return nil, err
		}
		if err := ds.WriteGrid(ctx, p.String(), 0, g); err != nil {
			return nil, err
		}
	}
	return ds, nil
}
