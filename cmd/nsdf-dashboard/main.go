// Command nsdf-dashboard serves the step-4 interactive dashboard over one
// or more IDX datasets. With -demo it synthesises a Tennessee dataset
// first so the dashboard works out of the box.
//
// Usage:
//
//	nsdf-dashboard -addr :8080 -data name=./tennessee.idxdata
//	nsdf-dashboard -demo
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"nsdfgo/internal/dashboard"
	"nsdfgo/internal/dem"
	"nsdfgo/internal/geotiled"
	"nsdfgo/internal/idx"
	"nsdfgo/internal/query"
	"nsdfgo/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nsdf-dashboard:", err)
		os.Exit(1)
	}
}

type dataFlags []string

func (d *dataFlags) String() string { return strings.Join(*d, ",") }

// Set implements flag.Value.
func (d *dataFlags) Set(v string) error {
	*d = append(*d, v)
	return nil
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	cacheMB := flag.Int("cache-mb", 64, "block cache size per dataset in MiB")
	demo := flag.Bool("demo", false, "synthesise and register a demo Tennessee dataset")
	summaryEvery := flag.Duration("summary-interval", 30*time.Second, "interval between one-line telemetry summaries (0 disables)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request deadline bounding all block I/O (0 disables)")
	var data dataFlags
	flag.Var(&data, "data", "dataset as name=path/to/idx/dir (repeatable)")
	flag.Parse()

	ctx := context.Background()
	reg := telemetry.NewRegistry()
	server := dashboard.NewServer()
	server.EnableTelemetry(reg)
	registered := 0
	for _, spec := range data {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -data %q (want name=path)", spec)
		}
		be, err := idx.NewDirBackend(path)
		if err != nil {
			return err
		}
		ds, err := idx.Open(ctx, be)
		if err != nil {
			return fmt.Errorf("open %s: %w", path, err)
		}
		server.Register(name, query.New(ds, int64(*cacheMB)<<20))
		fmt.Printf("registered %s: %dx%d, %d fields, %d timesteps\n",
			name, ds.Meta.Dims[0], ds.Meta.Dims[1], len(ds.Meta.Fields), ds.Meta.Timesteps)
		registered++
	}
	if *demo {
		ds, err := buildDemoDataset(ctx)
		if err != nil {
			return fmt.Errorf("demo dataset: %w", err)
		}
		server.Register("tennessee_demo", query.New(ds, int64(*cacheMB)<<20))
		fmt.Println("registered tennessee_demo (synthetic 512x256, 4 fields)")
		registered++
	}
	if registered == 0 {
		return fmt.Errorf("nothing to serve: pass -data name=path or -demo")
	}
	if *summaryEvery > 0 {
		go summaryLoop(reg, *summaryEvery)
	}
	fmt.Printf("dashboard listening on %s (metrics at /metrics)\n", *addr)
	// ReadHeaderTimeout/IdleTimeout keep slow or silent clients from
	// holding connections open indefinitely; WithRequestTimeout bounds
	// each request's block I/O when -request-timeout is set.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           telemetry.WithRequestTimeout(server, *requestTimeout),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	return srv.ListenAndServe()
}

// summaryLoop prints a periodic one-line operational summary so sweep
// logs capture hit rates and latency percentiles without scraping.
func summaryLoop(reg *telemetry.Registry, every time.Duration) {
	for range time.Tick(every) {
		fmt.Println(summaryLine(reg))
	}
}

// summaryLine condenses the registry into one log line.
func summaryLine(reg *telemetry.Registry) string {
	requests := reg.SumFamily("nsdf_http_requests_total")
	hits := reg.SumFamily("nsdf_cache_hits_total")
	misses := reg.SumFamily("nsdf_cache_misses_total")
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = 100 * hits / (hits + misses)
	}
	line := fmt.Sprintf("[metrics] http_requests=%.0f cache_hit=%.1f%% blocks_read=%.0f blocks_cached=%.0f bytes_read=%.0f",
		requests, hitRate,
		reg.SumFamily("nsdf_idx_blocks_read_total"),
		reg.SumFamily("nsdf_idx_blocks_cached_total"),
		reg.SumFamily("nsdf_idx_bytes_read_total"))
	if p50, p95, p99, ok := reg.FamilyQuantiles("nsdf_http_request_seconds"); ok {
		line += fmt.Sprintf(" http_p50=%.1fms p95=%.1fms p99=%.1fms", p50*1e3, p95*1e3, p99*1e3)
	}
	return line
}

// buildDemoDataset synthesises the tutorial's Tennessee scene in memory.
func buildDemoDataset(ctx context.Context) (*idx.Dataset, error) {
	d := dem.Tennessee(512, 256, 20240624)
	fields := make([]idx.Field, 0, len(geotiled.TutorialParams))
	for _, p := range geotiled.TutorialParams {
		fields = append(fields, idx.Field{Name: p.String(), Type: idx.Float32})
	}
	meta, err := idx.NewMeta([]int{512, 256}, fields)
	if err != nil {
		return nil, err
	}
	meta.Geo = d.Geo
	ds, err := idx.Create(ctx, idx.NewMemBackend(), meta)
	if err != nil {
		return nil, err
	}
	for _, p := range geotiled.TutorialParams {
		g, err := geotiled.ComputeTiled(d, p, geotiled.Options{})
		if err != nil {
			return nil, err
		}
		if err := ds.WriteGrid(ctx, p.String(), 0, g); err != nil {
			return nil, err
		}
	}
	return ds, nil
}
