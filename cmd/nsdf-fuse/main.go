// Command nsdf-fuse is the NSDF-FUSE client: it moves files in and out of
// an object store through a mapping package, the way the FUSE mounts in
// the NSDF testbed do. The store may be a local directory or a running
// nsdf-store endpoint.
//
// Usage:
//
//	nsdf-fuse -store ./objects -mapping chunked put data/big.tif
//	nsdf-fuse -store http://localhost:9000 -token secret ls data/
//	nsdf-fuse -store ./objects get data/big.tif /tmp/out.tif
//	nsdf-fuse -store ./objects rm data/big.tif
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"nsdfgo/internal/fusefs"
	"nsdfgo/internal/storage"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nsdf-fuse:", err)
		os.Exit(1)
	}
}

func run() error {
	storeSpec := flag.String("store", "", "object store: a directory path or an http(s):// endpoint")
	token := flag.String("token", "", "bearer token for private HTTP stores")
	mappingName := flag.String("mapping", "one-to-one", "mapping package: one-to-one, chunked, or compressed")
	chunkKB := flag.Int("chunk-kb", 1024, "chunk size in KiB for the chunked mapping")
	flag.Parse()
	if *storeSpec == "" {
		return fmt.Errorf("-store is required")
	}
	if flag.NArg() == 0 {
		return fmt.Errorf("no command (want ls, put, get, or rm)")
	}

	var store storage.Store
	if strings.HasPrefix(*storeSpec, "http://") || strings.HasPrefix(*storeSpec, "https://") {
		store = storage.NewClient(*storeSpec, *token)
	} else {
		fs, err := storage.NewFileStore(*storeSpec)
		if err != nil {
			return err
		}
		store = fs
	}
	var mapping fusefs.Mapping
	switch *mappingName {
	case "one-to-one":
		mapping = fusefs.OneToOne{}
	case "chunked":
		mapping = fusefs.Chunked{ChunkSize: *chunkKB << 10}
	case "compressed":
		mapping = fusefs.Compressed{}
	default:
		return fmt.Errorf("unknown mapping %q", *mappingName)
	}

	ctx := context.Background()
	args := flag.Args()
	switch args[0] {
	case "ls":
		prefix := ""
		if len(args) > 1 {
			prefix = args[1]
		}
		files, err := mapping.Files(ctx, store, prefix)
		if err != nil {
			return err
		}
		for _, f := range files {
			size := "?"
			if f.Size >= 0 {
				size = fmt.Sprint(f.Size)
			}
			fmt.Printf("%12s  %s\n", size, f.Path)
		}
		return nil
	case "put":
		if len(args) < 2 {
			return fmt.Errorf("put needs a local file (and optional remote path)")
		}
		local := args[1]
		remote := local
		if len(args) > 2 {
			remote = args[2]
		}
		data, err := os.ReadFile(local)
		if err != nil {
			return err
		}
		if err := mapping.Write(ctx, store, remote, data); err != nil {
			return err
		}
		fmt.Printf("put %s -> %s (%d bytes, %s mapping)\n", local, remote, len(data), mapping.Name())
		return nil
	case "get":
		if len(args) < 3 {
			return fmt.Errorf("get needs a remote path and a local destination")
		}
		data, err := mapping.Read(ctx, store, args[1])
		if err != nil {
			return err
		}
		if err := os.WriteFile(args[2], data, 0o644); err != nil {
			return err
		}
		fmt.Printf("get %s -> %s (%d bytes)\n", args[1], args[2], len(data))
		return nil
	case "rm":
		if len(args) < 2 {
			return fmt.Errorf("rm needs a remote path")
		}
		if err := mapping.Remove(ctx, store, args[1]); err != nil {
			return err
		}
		fmt.Printf("rm %s\n", args[1])
		return nil
	default:
		return fmt.Errorf("unknown command %q (want ls, put, get, or rm)", args[0])
	}
}
